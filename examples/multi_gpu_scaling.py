#!/usr/bin/env python
"""Multi-GPU scaling and overlap tour (paper §IV-B / §V-C).

Walks the full distributed machinery on a simulated 4×P100 NVLink node:
the multisplit → transposition → insert cascade, strong scaling over
1-4 GPUs, and the asynchronous batch overlap of Fig. 5 — including an
ASCII Gantt chart of the overlapped pipeline.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.perfmodel import throughput, time_cascade
from repro.pipeline import insert_stages, overlap_improvement, schedule_batches
from repro.workloads import random_values, unique_keys

N = 1 << 17  # pairs per experiment
LOAD = 0.95


def show_topology() -> None:
    node = p100_nvlink_node(4)
    print("== node topology (Fig. 6) ==")
    for a in range(4):
        for b in range(a + 1, 4):
            print(f"  GPU{a} <-> GPU{b}: {node.link_bandwidth(a, b) / 1e9:.0f} GB/s")
    print(f"  bisection bandwidth: {node.bisection_bandwidth() / 1e9:.0f} GB/s")
    print(f"  PCIe switches: {node.num_switches} x "
          f"{node.pcie_switch_bandwidth / 1e9:.0f} GB/s\n")


def scaling_demo() -> None:
    print(f"== strong scaling: insert {N} pairs at load {LOAD} ==")
    keys = unique_keys(N, seed=3)
    values = random_values(N, seed=4)
    tau1 = None
    for m in (1, 2, 3, 4):
        node = p100_nvlink_node(m)
        table = DistributedHashTable.for_load_factor(node, N, LOAD, group_size=4)
        report = table.insert(keys, values, source="device")
        timing = time_cascade(report, table, node)
        secs = timing.device_only
        if tau1 is None:
            tau1 = secs
        eff = tau1 / (m * secs)
        print(
            f"  m={m}: {secs * 1e3:7.3f} ms  "
            f"rate={throughput(N, secs) / 1e9:5.2f} Gops/s  E_s={eff:.2f}  "
            f"(phases: ms={timing.multisplit * 1e3:.2f} a2a={timing.alltoall * 1e3:.2f} "
            f"ins={timing.kernel * 1e3:.2f})"
        )
        # every stored pair is retrievable, wherever it landed
        got, found, _ = table.query(keys[::1000], source="device")
        assert bool(found.all()) and bool((got == values[::1000]).all())
        table.free()
    print()


def overlap_demo() -> None:
    print("== asynchronous overlap (Fig. 5): 12 host-sided insert batches ==")
    node = p100_nvlink_node(4)
    num_batches, batch = 12, 1 << 14
    table = DistributedHashTable.for_load_factor(
        node, num_batches * batch, LOAD, group_size=4
    )
    pool = unique_keys(num_batches * batch, seed=5)
    stage_lists = []
    for b in range(num_batches):
        keys = pool[b * batch : (b + 1) * batch]
        report = table.insert(keys, random_values(batch, seed=b), source="host")
        stage_lists.append(insert_stages(time_cascade(report, table, node)))

    for threads in (1, 2, 4):
        seq, ov, reduction = overlap_improvement(stage_lists, threads)
        util = ov.utilizations()
        print(
            f"  threads={threads}: makespan {ov.makespan * 1e3:7.3f} ms, "
            f"reduction {reduction * 100:4.1f}%, "
            f"PCIe util {util['pcie_up'] * 100:.0f}%"
        )
    print("\n  4-thread pipeline (digits are batch ids):")
    print("  " + schedule_batches(stage_lists, 4).render(width=66).replace("\n", "\n  "))


def main() -> None:
    show_topology()
    scaling_demo()
    overlap_demo()


if __name__ == "__main__":
    main()
