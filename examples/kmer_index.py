#!/usr/bin/env python
"""Distributed k-mer counting index — the paper's bioinformatics workload.

§IV-B motivates multi-GPU hashing with genomics: every k-length substring
(k-mer) of a DNA sequence is hashed, so O(n·k) bytes of keys flow from
O(n) bytes of transferred sequence.  This example:

1. generates a synthetic genome and spikes in a known repeated motif,
2. extracts all k-mers and counts them with a *distributed* hash table
   across a simulated 4×P100 NVLink node,
3. queries the index for the motif and for random absent k-mers,
4. reports the modelled device time and the PCIe amplification factor.

Run:  python examples/kmer_index.py
"""

import numpy as np

from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.perfmodel import throughput, time_cascade
from repro.workloads import extract_kmers, kmer_to_string, pcie_amplification, random_dna

K = 12
GENOME_LEN = 400_000
MOTIF = b"ACGTACGGTTCA"  # 12-mer we plant throughout the genome


def build_genome(seed: int = 7) -> bytes:
    genome = bytearray(random_dna(GENOME_LEN, seed=seed))
    rng = np.random.default_rng(seed + 1)
    # plant the motif 500 times at random offsets
    for pos in rng.integers(0, GENOME_LEN - len(MOTIF), size=500):
        genome[pos : pos + len(MOTIF)] = MOTIF
    return bytes(genome)


def main() -> None:
    genome = build_genome()
    kmers = extract_kmers(genome, K)
    print(f"genome of {len(genome)} bases -> {len(kmers)} {K}-mers")
    print(
        f"PCIe amplification of on-device extraction: "
        f"{pcie_amplification(len(genome), K):.1f}x (§IV-B)"
    )

    # count multiplicities on the host side of the workload generator;
    # the table stores kmer -> count (a counting index)
    unique, counts = np.unique(kmers, return_counts=True)
    print(f"{len(unique)} distinct {K}-mers; max multiplicity {int(counts.max())}")

    node = p100_nvlink_node(4)
    index = DistributedHashTable.for_load_factor(node, len(unique), 0.9, group_size=4)
    report = index.insert(unique, np.minimum(counts, 0xFFFFFFFF).astype(np.uint32),
                          source="device")
    timing = time_cascade(report, index, node)
    print(
        f"built distributed index on {node.num_devices} GPUs: "
        f"{len(index)} entries, shard sizes {index.shard_sizes().tolist()}, "
        f"partition imbalance {report.load_imbalance:.3f}"
    )
    print(
        f"modelled device-side build: {timing.device_only * 1e3:.3f} ms "
        f"({throughput(len(unique), timing.device_only) / 1e9:.2f} G inserts/s)"
    )

    # query the planted motif
    motif_key = extract_kmers(MOTIF, K)
    values, found, qreport = index.query(motif_key, source="device")
    print(
        f"\nmotif {MOTIF.decode()} ({kmer_to_string(int(motif_key[0]), K)}): "
        f"found={bool(found[0])}, count={int(values[0])}"
    )
    assert found[0] and values[0] >= 400  # planted 500, some overlap each other

    # absent k-mers come back not-found
    rng = np.random.default_rng(99)
    probes = rng.integers(0, 1 << (2 * K), size=10_000, dtype=np.int64).astype(np.uint32)
    _, found, qreport = index.query(probes, source="device")
    present = int(found.sum())
    qtiming = time_cascade(qreport, index, node)
    print(
        f"random probes: {present}/{len(probes)} present; modelled query "
        f"rate {throughput(len(probes), qtiming.device_only) / 1e9:.2f} G ops/s"
    )

    # top-5 most frequent k-mers, cross-checked against the table
    top = np.argsort(counts)[-5:][::-1]
    print("\ntop k-mers (table-verified):")
    for i in top:
        v, f, _ = index.query(unique[i : i + 1], source="device")
        assert f[0] and int(v[0]) == int(counts[i])
        print(f"  {kmer_to_string(int(unique[i]), K)}  x{int(counts[i])}")


if __name__ == "__main__":
    main()
