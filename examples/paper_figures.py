#!/usr/bin/env python
"""Regenerate every figure and table of the paper's evaluation in one go.

This is the human-readable counterpart of ``pytest benchmarks/``: it runs
the same experiment harness and prints the paper-style result blocks.

    python examples/paper_figures.py          # default (quick) scale
    python examples/paper_figures.py --full   # benchmark-suite scale

Equivalent to ``python -m repro figures [--full]``.
"""

import argparse

from repro.bench.figures import print_all_figures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="benchmark-suite scale (slower, smoother curves)")
    args = parser.parse_args()
    print_all_figures(full=args.full)


if __name__ == "__main__":
    main()
