#!/usr/bin/env python
"""Bag-of-words under heavy key skew — the Fig. 8 scenario end to end.

The paper's Zipf experiment models workloads like natural-language
processing [1], where a few keys dominate.  WarpDrive handles duplicate
keys by updating the stored value (§V-B, "the value associated to a
non-unique key is the last element written on the event horizon"); a
counting index instead pre-aggregates multiplicities.  This example does
both and compares WarpDrive against the sort-and-compress store (§II) on
the same skewed data.

Run:  python examples/zipf_wordcount.py
"""

import numpy as np

from repro import WarpDriveHashTable
from repro.baselines import SortCompressStore
from repro.perfmodel import P100, kernel_seconds, throughput
from repro.workloads import bag_of_words, synthetic_corpus, token_keys, zipf_keys


def wordcount_demo() -> None:
    print("== word count over a Zipf-ish synthetic corpus ==")
    tokens = synthetic_corpus(200_000, zipf_s=1.3, seed=11)
    keys, counts, legend = bag_of_words(tokens)
    print(f"{len(tokens)} tokens, {len(keys)} distinct words")

    table = WarpDriveHashTable.for_load_factor(len(keys), 0.9, group_size=4)
    table.insert(keys, counts)

    top = np.argsort(counts)[-8:][::-1]
    print("top words (table-verified):")
    for i in top:
        got, found = table.query(keys[i : i + 1])
        assert found[0] and int(got[0]) == int(counts[i])
        print(f"  {legend[int(keys[i])]:<24} {int(counts[i]):7d}")

    # unseen words are reported absent
    ghost = token_keys(["wordthatneverhappened"])
    _, found = table.query(ghost)
    print(f"unseen word found: {bool(found[0])}\n")


def zipf_update_semantics() -> None:
    print("== raw Zipf stream: last-writer-wins updates (Fig. 8 protocol) ==")
    n = 1 << 16
    keys = zipf_keys(n, s=1.0 + 1e-6, universe=n // 4, seed=13)
    values = np.arange(n, dtype=np.uint32)  # submission stamp as value
    unique = int(np.unique(keys).shape[0])
    print(f"{n} insertions over {unique} distinct keys "
          f"(mean multiplicity {n / unique:.1f})")

    # occupancy-based load: capacity targets the number of *unique* keys
    table = WarpDriveHashTable.for_load_factor(unique, 0.95, group_size=2)
    report = table.insert(keys, values)
    updates = n - len(table)
    print(
        f"stored {len(table)} pairs, {updates} updates folded in; "
        f"true occupancy {table.occupancy():.3f}"
    )

    # last writer wins: the stored stamp is the highest submission index
    # of that key
    sample = np.unique(keys)[:1000]
    got, found = table.query(sample)
    assert bool(found.all())
    for k, v in zip(sample[:2000:400], got[:2000:400]):
        last = int(np.flatnonzero(keys == k)[-1])
        assert int(v) == last, (k, v, last)
    print("last-writer-wins verified on a sample")

    secs = kernel_seconds(report, P100, table_bytes=table.table_bytes)
    print(f"modelled P100 rate: {throughput(n, secs) / 1e9:.2f} G inserts/s\n")


def against_sort_and_compress() -> None:
    print("== WarpDrive vs sort-and-compress on the skewed stream (§II) ==")
    n = 1 << 16
    keys = zipf_keys(n, s=1.0 + 1e-6, universe=n // 4, seed=17)
    values = np.arange(n, dtype=np.uint32)

    store = SortCompressStore(keys, values)
    unique = len(store)
    table = WarpDriveHashTable.for_load_factor(unique, 0.95, group_size=2)
    ins = table.insert(keys, values)

    probe = np.unique(keys)[:20_000]
    _, _ = table.query(probe)
    wd_query = table.last_report
    _, _ = store.query(probe)
    sc_query = store.last_report

    wd_q = kernel_seconds(wd_query, P100, table_bytes=table.table_bytes)
    sc_q = kernel_seconds(sc_query, P100)
    print(
        f"query {len(probe)} keys -> WarpDrive {wd_q * 1e6:.1f} us vs "
        f"sort&compress {sc_q * 1e6:.1f} us "
        f"(binary search pays ~log2(n) probes: "
        f"{sc_query.mean_windows:.1f} vs {wd_query.mean_windows:.1f})"
    )
    print(
        f"memory: table {table.table_bytes / 1e6:.1f} MB vs "
        f"store {store.table_bytes / 1e6:.1f} MB + {store.aux_bytes / 1e6:.1f} MB "
        f"auxiliary (the §II 'capacity reduced by a factor of two' drawback)"
    )
    # multi-value retrieval is where sort-and-compress shines
    hot = int(np.argmax(np.bincount(np.searchsorted(store.unique_keys, keys))))
    hot_key = int(store.unique_keys[hot])
    print(
        f"multi-value: key {hot_key} holds {store.multiplicity(hot_key)} values "
        f"in the store; the hash table keeps only the last one"
    )


def main() -> None:
    wordcount_demo()
    zipf_update_semantics()
    against_sort_and_compress()


if __name__ == "__main__":
    main()
