#!/usr/bin/env python
"""Tour of the §VI extensions: the features the paper sketched as future
work, implemented and measurable.

1. **Adaptive group sizing** — retunes |g| to the current load factor.
2. **Partitioned high-capacity maps** — ≤2 GB sub-tables dodge the
   multi-memory-interface CAS degradation.
3. **Multi-value tables** — the §II extension CUDPP would have needed
   for the Zipf experiment.
4. **Snapshots** — save/load a built table without re-inserting.
5. **Async streaming driver** — contribution 3 as a reusable API.

Run:  python examples/extensions_tour.py
"""

import tempfile

import numpy as np

from repro.core import (
    AdaptiveWarpDriveTable,
    MultiValueHashTable,
    PartitionedWarpDriveTable,
    WarpDriveHashTable,
)
from repro.core.serialize import load_table, save_table
from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.perfmodel import calibration as cal
from repro.perfmodel.memmodel import cas_degradation, projected_seconds, throughput
from repro.perfmodel.specs import P100
from repro.pipeline import AsyncCascadeDriver
from repro.workloads import BatchStream, random_values, unique_keys, zipf_keys

N = 1 << 15


def adaptive_demo() -> None:
    print("== 1. adaptive group sizing (§VI heuristic) ==")
    keys = unique_keys(N, seed=1)
    table = AdaptiveWarpDriveTable(int(N / 0.99) + 1, group_size=32)
    for i in range(4):
        sl = slice(i * N // 4, (i + 1) * N // 4)
        table.insert(keys[sl], keys[sl])
        print(f"  load {table.load_factor:.2f} -> |g| = {table.current_group_size}")
    got, found = table.query(keys)
    assert bool(found.all())
    print(f"  retunes: {table.tuning_history}\n")


def partitioned_demo() -> None:
    print("== 2. partitioned high-capacity map (§VI workaround) ==")
    mono_bytes = 8 << 30
    print(
        f"  monolithic 8 GiB table: CAS factor "
        f"{cas_degradation(mono_bytes):.2f} (past the "
        f"{cal.CAS_DEGRADE_KNEE_BYTES >> 30} GiB knee)"
    )
    table = PartitionedWarpDriveTable(200_000, max_partition_bytes=400_000)
    print(
        f"  partitioned: {table.num_partitions} sub-tables of "
        f"{table.subtable_bytes} B each, CAS factor "
        f"{cas_degradation(table.subtable_bytes):.2f}"
    )
    keys = unique_keys(N, seed=2)
    table.insert(keys, keys)
    got, found = table.query(keys)
    assert bool(found.all())
    print(f"  {len(table)} pairs stored across {table.num_partitions} parts\n")


def multivalue_demo() -> None:
    print("== 3. multi-value table (§II extension) ==")
    keys = zipf_keys(N, s=1.4, universe=500, seed=3)
    table = MultiValueHashTable.for_load_factor(N, 0.8, group_size=4)
    table.insert(keys, np.arange(N, dtype=np.uint32))
    uniq, counts = np.unique(keys, return_counts=True)
    got = table.count(uniq)
    assert (got == counts).all()
    hot = int(uniq[np.argmax(counts)])
    print(
        f"  {N} pairs over {uniq.size} keys; hottest key {hot} holds "
        f"{int(counts.max())} values; count() verified for all keys"
    )
    print(f"  query_multi(hot)[:5] = {table.query_multi(hot)[:5].tolist()}\n")


def snapshot_demo() -> None:
    print("== 4. table snapshots ==")
    table = WarpDriveHashTable.for_load_factor(N, 0.9, group_size=8)
    keys = unique_keys(N, seed=4)
    table.insert(keys, keys)
    with tempfile.NamedTemporaryFile(suffix=".npz") as tmp:
        save_table(table, tmp.name)
        loaded = load_table(tmp.name)
    got, found = loaded.query(keys[:100])
    assert bool(found.all())
    print(f"  snapshot round-trip: {len(loaded)} pairs, byte-identical slots\n")


def driver_demo() -> None:
    print("== 5. async streaming driver (contribution 3 as API) ==")
    node = p100_nvlink_node(4)
    stream = BatchStream(total=N, batch_size=N // 8, seed=5)
    pool = np.concatenate([b.keys for b in stream])
    table = DistributedHashTable.for_workload(node, pool, 0.95)
    driver = AsyncCascadeDriver(table, num_threads=4, scale=(1 << 24) / (N // 8))
    res = driver.insert_stream((b.keys, b.values) for b in stream)
    print(
        f"  insert: {res.reduction * 100:.1f}% wall-time reduction from "
        f"overlap, {res.ops_per_second / 1e9:.2f} G ops/s modelled"
    )
    qres = driver.query_stream(b.keys for b in stream)
    assert bool(qres.found.all())
    print(
        f"  query : {qres.reduction * 100:.1f}% reduction, "
        f"{qres.ops_per_second / 1e9:.2f} G ops/s modelled"
    )


def counting_demo() -> None:
    print("\n== 6. counting table (the hot-key answer to A8) ==")
    from repro.core import CountingHashTable

    keys = zipf_keys(N, s=1.6, universe=300, seed=6)
    counter = CountingHashTable.for_load_factor(400, 0.9)
    for part in np.array_split(keys, 8):  # streamed batches
        counter.add(part)
    uniq, counts = np.unique(keys, return_counts=True)
    assert (counter.count(uniq) == counts).all()
    top = counter.most_common(3)
    print(f"  {N} observations over {len(counter)} keys; top-3: {top}")
    print(
        "  a key repeated M times costs one table update per batch — not "
        "the multi-value table's O(M²/|g|) walk"
    )


def main() -> None:
    adaptive_demo()
    partitioned_demo()
    multivalue_demo()
    snapshot_demo()
    driver_demo()
    counting_demo()


if __name__ == "__main__":
    main()
