#!/usr/bin/env python
"""Quickstart: build, query, update, and delete on a WarpDrive hash table.

Runs in a couple of seconds and touches the whole single-GPU public API:

    python examples/quickstart.py
"""

import numpy as np

from repro import WarpDriveHashTable
from repro.core import expected_insert_windows, probe_summary
from repro.perfmodel import P100, kernel_seconds, throughput
from repro.workloads import random_values, unique_keys


def main() -> None:
    n = 200_000
    load = 0.9

    print(f"== WarpDrive quickstart: {n} pairs at target load {load} ==\n")

    # 1. build a table sized for the target load factor
    table = WarpDriveHashTable.for_load_factor(n, load, group_size=8)
    print(f"table: {table!r}")

    # 2. bulk insert
    keys = unique_keys(n, seed=1)
    values = random_values(n, seed=2)
    report = table.insert(keys, values)
    print(
        f"inserted {report.num_ops} pairs; true load {table.load_factor:.3f}; "
        f"mean probing windows {report.mean_windows:.2f} "
        f"(final-load bound {expected_insert_windows(load, 8):.2f})"
    )
    print(f"probe distribution: {probe_summary(report)}")

    # 3. bulk query — values come back in key order with a found mask
    got, found = table.query(keys[:1000])
    assert bool(found.all()) and bool((got == values[:1000]).all())
    print("first 1000 keys round-trip exactly")

    # 4. missing keys are reported, not invented
    absent = np.arange(2**31, 2**31 + 5, dtype=np.uint32)
    got, found = table.query(absent, default=0)
    print(f"absent probe: found={found.tolist()}")

    # 5. updates: re-inserting a key overwrites its value (§V-B semantics)
    table.insert(keys[:3], np.array([7, 8, 9], dtype=np.uint32))
    got, _ = table.query(keys[:3])
    print(f"after update, values are {got.tolist()}")

    # 6. deletion via tombstones (its own barrier-delimited phase)
    erased = table.erase(keys[:3])
    print(f"erased {int(erased.sum())} keys; size now {len(table)}")
    _, found = table.query(keys[:3])
    assert not found.any()

    # 7. what would this cost on a real P100?
    secs = kernel_seconds(report, P100, table_bytes=table.table_bytes)
    print(
        f"\nmodelled P100 insert time for this batch: {secs * 1e3:.2f} ms "
        f"({throughput(n, secs) / 1e9:.2f} G inserts/s)"
    )


if __name__ == "__main__":
    main()
