"""Fast unit tests for the fuzz harness internals (tier-1 scope).

Full differential fuzzing runs live in ``tests/fuzz`` behind the
``fuzz`` marker; this file covers the deterministic plumbing — case
derivation, workload shapes, diffing, shrinking candidates, and the
corpus format — cheaply enough for every tier-1 run.
"""

import json

import numpy as np
import pytest

from repro.sanitize.fuzz import (
    CHECK_NAMES,
    FuzzCase,
    FuzzFailure,
    _diff,
    _shrink_candidates,
    _workload,
    load_corpus,
    run_case,
    run_fuzz,
)


class TestCaseDerivation:
    def test_same_seed_same_case(self):
        assert FuzzCase.from_seed(42) == FuzzCase.from_seed(42)

    def test_different_seeds_vary_parameters(self):
        cases = {FuzzCase.from_seed(s) for s in range(40)}
        assert len({c.n for c in cases}) > 1
        assert len({c.skew for c in cases}) > 1
        assert len({c.m for c in cases}) > 1

    def test_round_trips_through_dict(self):
        case = FuzzCase.from_seed(7)
        assert FuzzCase.from_dict(case.to_dict()) == case

    def test_describe_surfaces_the_scheduler_seed(self):
        case = FuzzCase.from_seed(3)
        assert f"scheduler_seed={case.scheduler_seed}" in case.describe()
        assert f"seed={case.seed}" in case.describe()


class TestWorkloads:
    @pytest.mark.parametrize("skew", ["unique", "uniform", "zipf", "dup"])
    def test_shapes_and_disjoint_absent_keys(self, skew):
        case = FuzzCase(
            seed=5, n=48, group_size=4, load_factor=0.75, skew=skew,
            tombstone_ratio=0.25, m=2, scheduler_seed=1,
        )
        keys, values, absent = _workload(case)
        assert keys.shape == values.shape == (48,)
        assert keys.dtype == np.uint32
        assert absent.size > 0
        assert not np.isin(absent, keys).any()

    def test_unique_skew_has_no_duplicates(self):
        case = FuzzCase(
            seed=5, n=48, group_size=4, load_factor=0.75, skew="unique",
            tombstone_ratio=0.0, m=1, scheduler_seed=1,
        )
        keys, _, _ = _workload(case)
        assert np.unique(keys).size == keys.size

    def test_dup_skew_duplicates_heavily(self):
        case = FuzzCase(
            seed=5, n=48, group_size=4, load_factor=0.75, skew="dup",
            tombstone_ratio=0.0, m=1, scheduler_seed=1,
        )
        keys, _, _ = _workload(case)
        assert np.unique(keys).size < keys.size


class TestDiff:
    def test_equal_arrays_pass(self):
        assert _diff("x", np.array([1, 2]), np.array([1, 2])) is None

    def test_mismatch_reports_first_index(self):
        msg = _diff("x", np.array([1, 2, 3]), np.array([1, 9, 3]))
        assert "x" in msg and "[1]" in msg

    def test_shape_mismatch_reported(self):
        assert "shape" in _diff("x", np.zeros(2), np.zeros(3))


class TestShrinking:
    def test_candidates_are_strictly_simpler(self):
        case = FuzzCase(
            seed=1, n=240, group_size=32, load_factor=0.92, skew="zipf",
            tombstone_ratio=0.5, m=8, scheduler_seed=9,
        )
        for cand in _shrink_candidates(case):
            assert (
                cand.n < case.n
                or cand.m < case.m
                or cand.group_size < case.group_size
                or cand.skew != case.skew
                or cand.tombstone_ratio < case.tombstone_ratio
                or cand.load_factor < case.load_factor
            )
            assert cand.seed == case.seed  # workload stream is preserved

    def test_minimal_case_has_no_candidates(self):
        case = FuzzCase(
            seed=1, n=12, group_size=2, load_factor=0.35, skew="unique",
            tombstone_ratio=0.0, m=1, scheduler_seed=9,
        )
        assert list(_shrink_candidates(case)) == []


class TestCorpusAndMessages:
    def test_missing_or_corrupt_corpus_loads_empty(self, tmp_path):
        assert load_corpus(tmp_path / "nope.json")["entries"] == []
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_corpus(bad)["entries"] == []

    def test_run_fuzz_writes_replayable_entries(self, tmp_path):
        corpus = tmp_path / "corpus.json"
        result = run_fuzz(max_cases=2, corpus_path=corpus, shrink_failures=False)
        assert result.cases_run == 2
        data = json.loads(corpus.read_text())
        assert len(data["entries"]) == 2
        replayed = FuzzCase.from_dict(data["entries"][0]["case"])
        assert replayed == FuzzCase.from_seed(0)

    def test_failure_message_has_replay_instructions(self):
        case = FuzzCase.from_seed(11)
        failure = FuzzFailure(case=case, check="query", detail="boom")
        msg = failure.message()
        assert "repro fuzz --replay 11" in msg
        assert "scheduler_seed" in msg

    def test_check_battery_is_complete(self):
        assert CHECK_NAMES == (
            "insert-export",
            "query",
            "erase-tombstone",
            "multisplit",
            "distributed",
        )

    def test_one_clean_case_passes(self):
        assert run_case(FuzzCase.from_seed(0)) is None
