"""Unit tests for the shadow-memory instrumentation layer."""

import numpy as np

from repro.sanitize.racecheck import RaceChecker
from repro.sanitize.shadow import AccessKind, ShadowedArray, _index_rows
from repro.simt.atomics import atomic_cas


class Recorder:
    """Minimal sanitizer protocol double."""

    plain_enabled = True

    def __init__(self):
        self.calls = []

    def record_plain(self, name, rows, kind, *, lanes_positional):
        self.calls.append((name, list(map(int, rows)), kind, lanes_positional))


class TestIndexRows:
    def test_scalar(self):
        assert list(_index_rows(8, 3)) == [3]

    def test_negative_scalar_wraps(self):
        assert list(_index_rows(8, -1)) == [7]

    def test_int_array_is_lane_ordered(self):
        rows = _index_rows(8, np.array([5, 2, 7]))
        assert list(rows) == [5, 2, 7]

    def test_negative_array_entries_wrap(self):
        assert list(_index_rows(8, np.array([-1, 0]))) == [7, 0]

    def test_slice_normalizes(self):
        assert list(_index_rows(6, slice(1, 4))) == [1, 2, 3]

    def test_bool_mask_normalizes(self):
        mask = np.array([True, False, True, False])
        assert list(_index_rows(4, mask)) == [0, 2]


class TestShadowedArray:
    def test_reads_and_writes_are_reported(self):
        rec = Recorder()
        arr = ShadowedArray(np.zeros(8, dtype=np.uint64), rec, "slots")
        _ = arr[np.array([1, 3])]
        arr[2] = np.uint64(5)
        kinds = [(name, kind) for name, _, kind, _ in rec.calls]
        assert kinds == [("slots", AccessKind.READ), ("slots", AccessKind.WRITE)]

    def test_fancy_index_is_lane_positional_scalar_is_not(self):
        rec = Recorder()
        arr = ShadowedArray(np.zeros(8, dtype=np.uint64), rec)
        _ = arr[np.array([4, 6])]
        _ = arr[4]
        assert rec.calls[0][3] is True
        assert rec.calls[1][3] is False

    def test_shares_memory_with_base(self):
        base = np.zeros(4, dtype=np.uint64)
        arr = ShadowedArray(base, Recorder())
        arr[1] = np.uint64(9)
        assert base[1] == 9

    def test_views_and_copies_drop_the_sanitizer(self):
        rec = Recorder()
        arr = ShadowedArray(np.arange(8, dtype=np.uint64), rec)
        view = arr[2:5]
        copied = arr[np.array([0, 1])]
        rec.calls.clear()
        _ = view[0]
        _ = copied[0]
        assert rec.calls == []  # register state is not shared memory

    def test_atomics_report_once_and_suppress_plain(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(4, dtype=np.uint64), "slots")
        atomic_cas(arr, 0, np.uint64(0), np.uint64(7))
        assert checker.stats["atomics"] == 1
        assert checker.stats["plain_reads"] == 0
        assert checker.stats["plain_writes"] == 0
        assert arr[0] == 7  # the CAS actually landed


class TestCheckerBookkeeping:
    def test_aux_arrays_record_under_their_name(self):
        checker = RaceChecker()
        stats = checker.shadow(np.zeros(1, dtype=np.int64), "stats")
        checker.on_launch(1, "t")
        checker.on_task_step(0)
        stats[0] = 1
        assert ("stats", 0) in checker._words

    def test_host_phase_traffic_is_counted_but_not_recorded(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(4, dtype=np.uint64), "slots")
        arr[0] = np.uint64(3)  # no launch in progress
        assert checker.stats["plain_writes"] == 1
        assert checker._words == {}

    def test_suppress_plain_context(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(4, dtype=np.uint64), "slots")
        with checker.suppress_plain():
            _ = arr[1]
        assert checker.stats["plain_reads"] == 0
