"""The sanitizer's acceptance contract: every catalogued mutant is
flagged with its expected rule under both lock-step and Volta-style
scheduling, and the unmutated kernels on the same conflicting workloads
produce zero findings."""

import pytest

from repro.sanitize.mutants import (
    MUTANTS,
    run_clean,
    run_counter_bump_control,
    run_mutant,
)
from repro.simt.scheduler import RandomScheduler, RoundRobinScheduler

SCHEDULERS = {
    "lockstep": lambda: RoundRobinScheduler(),
    "volta": lambda: RandomScheduler(seed=7),
}


@pytest.fixture(params=sorted(SCHEDULERS), ids=sorted(SCHEDULERS))
def make_scheduler(request):
    return SCHEDULERS[request.param]


class TestCleanTreeIsSilent:
    def test_clean_kernels_have_zero_findings(self, make_scheduler):
        report = run_clean(make_scheduler())
        assert report.clean, report.format()

    def test_clean_run_actually_generated_traffic(self, make_scheduler):
        """A silent report must not be silent for lack of instrumentation."""
        report = run_clean(make_scheduler())
        assert report.stats["plain_reads"] > 0
        assert report.stats["atomics"] > 0
        assert report.stats["syncs"] > 0
        assert report.stats["launches"] == 3  # insert, query, erase

    def test_atomic_counter_control_is_silent(self, make_scheduler):
        report = run_counter_bump_control(make_scheduler())
        assert report.clean, report.format()


class TestMutantsAreFlagged:
    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_flagged_with_expected_rule(self, name, make_scheduler):
        spec = MUTANTS[name]
        report = run_mutant(name, make_scheduler())
        assert not report.clean, f"{name}: no findings\n{report.format()}"
        assert spec.expected_rule in report.rules_hit(), report.format()
        assert any(f.array == spec.expected_array for f in report.findings)

    def test_catalogue_covers_the_issue_classes(self):
        assert set(MUTANTS) == {
            "dropped-cas-guard",
            "missing-post-ballot-sync",
            "split-tombstone-rmw",
            "unsync-counter-bump",
        }

    def test_detection_is_schedule_independent(self):
        """The same mutant yields the same rule under many random seeds."""
        for seed in range(5):
            report = run_mutant("dropped-cas-guard", RandomScheduler(seed=seed))
            assert "unguarded-write" in report.rules_hit(), (
                f"missed under RandomScheduler(seed={seed})"
            )

    def test_findings_name_the_racing_accesses(self, make_scheduler):
        report = run_mutant("split-tombstone-rmw", make_scheduler())
        text = report.findings[0].describe()
        assert "write" in text and "slots[" in text
