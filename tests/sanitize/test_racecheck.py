"""Rule-level tests for the race checker's conflict detection."""

import numpy as np
import pytest

from repro.sanitize.racecheck import MAX_RECORDS_PER_WORD, RaceChecker, RacecheckSession
from repro.simt.atomics import atomic_cas
from repro.simt.scheduler import RoundRobinScheduler


def _in_task(checker, task):
    checker.on_task_step(task)


class TestUnguardedWriteRule:
    def _checker(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(8, dtype=np.uint64), "slots")
        checker.on_launch(2, "test")
        return checker, arr

    def test_cross_task_write_read_conflicts(self):
        checker, arr = self._checker()
        _in_task(checker, 0)
        arr[3] = np.uint64(1)
        _in_task(checker, 1)
        _ = arr[3]
        report = checker.report()
        assert report.rules_hit() == {"unguarded-write"}
        assert report.findings[0].row == 3

    def test_cross_task_write_write_conflicts(self):
        checker, arr = self._checker()
        _in_task(checker, 0)
        arr[5] = np.uint64(1)
        _in_task(checker, 1)
        arr[5] = np.uint64(2)
        assert not checker.report().clean

    def test_cross_task_atomic_vs_atomic_is_legal(self):
        checker, arr = self._checker()
        _in_task(checker, 0)
        atomic_cas(arr, 2, np.uint64(0), np.uint64(1))
        _in_task(checker, 1)
        atomic_cas(arr, 2, np.uint64(0), np.uint64(2))
        assert checker.report().clean

    def test_cross_task_read_vs_atomic_is_tolerated_staleness(self):
        """Stale register copies are the algorithm's documented tolerance."""
        checker, arr = self._checker()
        _in_task(checker, 0)
        _ = arr[np.arange(4)]
        _in_task(checker, 1)
        atomic_cas(arr, 1, np.uint64(0), np.uint64(9))
        assert checker.report().clean

    def test_same_task_plain_write_is_legal_across_epochs(self):
        checker, arr = self._checker()
        _in_task(checker, 0)
        arr[4] = np.uint64(1)
        _ = arr[4]
        assert checker.report().clean  # scalar accesses carry no lane

    def test_launch_boundary_is_a_global_barrier(self):
        checker, arr = self._checker()
        _in_task(checker, 0)
        arr[6] = np.uint64(1)
        checker.on_task_done(0)
        checker.on_launch(2, "next")
        _in_task(checker, 1)
        _ = arr[6]
        assert checker.report().clean


class TestIntraGroupRule:
    def _checker(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(8, dtype=np.uint64), "slots")
        checker.on_launch(1, "test")
        checker.on_task_step(0)
        return checker, arr

    def test_same_epoch_different_lane_conflicts(self):
        checker, arr = self._checker()
        arr[np.array([2])] = np.uint64(1)  # lane 0 writes word 2
        _ = arr[np.array([5, 2])]  # lane 1 reads word 2, no sync between
        report = checker.report()
        assert report.rules_hit() == {"intra-group-unsynced"}

    def test_sync_between_write_and_read_is_legal(self):
        checker, arr = self._checker()
        arr[np.array([2])] = np.uint64(1)
        checker.on_sync()  # ballot/any/shfl boundary
        _ = arr[np.array([5, 2])]
        assert checker.report().clean

    def test_same_lane_rmw_is_legal(self):
        checker, arr = self._checker()
        arr[np.array([3])] = np.uint64(1)
        _ = arr[np.array([3])]  # both lane 0
        assert checker.report().clean

    def test_unknown_lane_write_does_not_fire_this_rule(self):
        checker, arr = self._checker()
        arr[3] = np.uint64(1)  # scalar: lane unknown
        _ = arr[np.array([0, 3])]
        assert "intra-group-unsynced" not in checker.report().rules_hit()


class TestRecordingLimits:
    def test_hot_word_overflow_is_counted_not_fatal(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(2, dtype=np.uint64), "slots")
        checker.on_launch(1, "test")
        checker.on_task_step(0)
        for _ in range(MAX_RECORDS_PER_WORD + 10):
            _ = arr[0]
        report = checker.report()
        assert report.stats["overflowed_words"] == 10

    def test_findings_deduped_per_writer_task(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(4, dtype=np.uint64), "slots")
        checker.on_launch(2, "test")
        checker.on_task_step(0)
        for _ in range(5):
            arr[1] = np.uint64(1)
        checker.on_task_step(1)
        _ = arr[1]
        findings = [f for f in checker.findings() if f.rule == "unguarded-write"]
        assert len(findings) == 1


class TestSessionAndReport:
    def test_session_shadows_slots_and_aux(self):
        session = RacecheckSession(32, 4, scheduler=RoundRobinScheduler())
        stats = session.aux("stats", 2)
        assert session.slots.sanitizer is session.checker
        assert stats.sanitizer is session.checker
        assert session.aux("stats", 2) is stats  # cached

    def test_report_format_mentions_rule_and_schedule(self):
        checker = RaceChecker()
        arr = checker.shadow(np.zeros(4, dtype=np.uint64), "slots")
        checker.on_launch(2, "test")
        checker.on_task_step(0)
        arr[0] = np.uint64(1)
        checker.on_task_step(1)
        _ = arr[0]
        text = checker.report(schedule="RoundRobinScheduler").format()
        assert "unguarded-write" in text
        assert "RoundRobinScheduler" in text
        assert "traffic:" in text

    def test_invalid_session_config_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RacecheckSession(32, 5)  # group size must divide the warp
