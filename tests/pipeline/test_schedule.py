"""Tests for the overlap scheduler (Fig. 5 semantics)."""

import pytest

from repro.errors import ScheduleError
from repro.pipeline.schedule import overlap_improvement, schedule_batches
from repro.pipeline.stages import Stage


def insert_batch(h2d=3.0, mst=1.0, ins=2.0):
    return [
        Stage("H2D", "pcie_up", h2d),
        Stage("MST", "nvlink", mst),
        Stage("INS", "vram", ins),
    ]


def query_batch(h2d=1.0, mst=1.0, ret=1.0, rev=0.5, d2h=2.0):
    return [
        Stage("H2D", "pcie_up", h2d),
        Stage("MST", "nvlink", mst),
        Stage("RET", "vram", ret),
        Stage("REV", "nvlink", rev),
        Stage("D2H", "pcie_down", d2h),
    ]


class TestSequential:
    def test_single_thread_is_sum(self):
        batches = [insert_batch() for _ in range(4)]
        tl = schedule_batches(batches, 1)
        assert tl.makespan == pytest.approx(4 * 6.0)

    def test_single_batch(self):
        tl = schedule_batches([insert_batch()], 1)
        assert tl.makespan == pytest.approx(6.0)
        start, end = tl.batch_span(0)
        assert start == 0.0 and end == 6.0

    def test_stage_order_within_batch(self):
        tl = schedule_batches([insert_batch()], 4)
        spans = sorted(tl.spans, key=lambda s: s.start)
        assert [s.stage for s in spans] == ["H2D", "MST", "INS"]


class TestOverlap:
    def test_two_threads_overlap_disjoint_resources(self):
        batches = [insert_batch() for _ in range(8)]
        seq, ov, red = overlap_improvement(batches, 2)
        assert ov.makespan < seq.makespan
        assert red > 0.2

    def test_pipeline_converges_to_bottleneck(self):
        """Long pipelines approach the H2D-bound: makespan/batches ->
        the longest stage."""
        n = 64
        batches = [insert_batch(h2d=3, mst=1, ins=2) for _ in range(n)]
        tl = schedule_batches(batches, 4)
        assert tl.makespan == pytest.approx(3 * n, rel=0.1)

    def test_resources_never_double_booked(self):
        batches = [query_batch() for _ in range(10)]
        tl = schedule_batches(batches, 4)
        tl.verify_no_overlap()  # raises on violation

    def test_batch_chain_respected(self):
        batches = [insert_batch() for _ in range(6)]
        tl = schedule_batches(batches, 3)
        tl.verify_batch_order()

    def test_h2d_d2h_full_duplex(self):
        """PCIe up and down lanes are separate resources: a pure-H2D and
        a pure-D2H stage of different batches may overlap in time."""
        batches = [query_batch(h2d=2, mst=0.1, ret=0.1, rev=0.1, d2h=2)
                   for _ in range(8)]
        tl = schedule_batches(batches, 4)
        # with half-duplex PCIe the floor would be 8*(2+2); full duplex
        # halves it
        assert tl.makespan < 8 * 4 * 0.75

    def test_more_threads_never_slower(self):
        batches = [insert_batch() for _ in range(12)]
        spans = [schedule_batches(batches, t).makespan for t in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)

    def test_utilization_increases_with_threads(self):
        batches = [insert_batch() for _ in range(12)]
        u1 = schedule_batches(batches, 1).utilization("pcie_up")
        u4 = schedule_batches(batches, 4).utilization("pcie_up")
        assert u4 > u1


class TestValidation:
    def test_zero_threads_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_batches([insert_batch()], 0)

    def test_empty_batches_ok(self):
        tl = schedule_batches([], 2)
        assert tl.makespan == 0.0

    def test_overlap_improvement_returns_triple(self):
        batches = [insert_batch() for _ in range(4)]
        seq, ov, red = overlap_improvement(batches, 2)
        assert red == pytest.approx(1 - ov.makespan / seq.makespan)

    def test_empty_comparison_rejected(self):
        with pytest.raises(ScheduleError):
            overlap_improvement([], 2)


class TestStageValidation:
    def test_bad_resource_rejected(self):
        with pytest.raises(Exception):
            Stage("X", "warpcore", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(Exception):
            Stage("X", "vram", -1.0)
