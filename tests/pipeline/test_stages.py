"""Tests for cascade stage construction."""

import pytest

from repro.perfmodel.cascade import CascadeTiming
from repro.pipeline.stages import insert_stages, query_stages


def timing(h2d=1.0, ms=0.5, a2a=0.3, kern=2.0, rev=0.2, d2h=1.5):
    return CascadeTiming(
        h2d=h2d, multisplit=ms, alltoall=a2a, kernel=kern, reverse=rev, d2h=d2h
    )


class TestInsertStages:
    def test_three_stage_cascade(self):
        stages = insert_stages(timing())
        assert [s.name for s in stages] == ["H2D", "MST", "INS"]
        assert [s.resource for s in stages] == ["pcie_up", "nvlink", "vram"]

    def test_mst_bundles_multisplit_and_alltoall(self):
        stages = insert_stages(timing(ms=0.5, a2a=0.3))
        assert stages[1].seconds == pytest.approx(0.8)

    def test_device_sided_drops_pcie(self):
        stages = insert_stages(timing(h2d=0.0))
        assert [s.name for s in stages] == ["MST", "INS"]

    def test_include_pcie_false(self):
        stages = insert_stages(timing(), include_pcie=False)
        assert [s.name for s in stages] == ["MST", "INS"]


class TestQueryStages:
    def test_five_stage_cascade(self):
        stages = query_stages(timing())
        assert [s.name for s in stages] == ["H2D", "MST", "RET", "REV", "D2H"]

    def test_pcie_legs_use_separate_lanes(self):
        stages = query_stages(timing())
        assert stages[0].resource == "pcie_up"
        assert stages[-1].resource == "pcie_down"

    def test_reverse_rides_nvlink(self):
        stages = query_stages(timing(rev=0.7))
        rev = [s for s in stages if s.name == "REV"][0]
        assert rev.resource == "nvlink" and rev.seconds == pytest.approx(0.7)

    def test_device_sided_query(self):
        stages = query_stages(timing(h2d=0.0, d2h=0.0))
        assert [s.name for s in stages] == ["MST", "RET", "REV"]


class TestCascadeTiming:
    def test_total_and_device_only(self):
        t = timing()
        assert t.total == pytest.approx(5.5)
        assert t.device_only == pytest.approx(3.0)

    def test_fractions_sum_to_one(self):
        fr = timing().fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_fractions_of_zero_timing(self):
        z = CascadeTiming(0, 0, 0, 0, 0, 0)
        assert all(v == 0.0 for v in z.fractions().values())

    def test_scaled(self):
        t = timing().scaled(2.0)
        assert t.total == pytest.approx(11.0)
