"""Depth-equivalence properties of the streaming pipeline (tentpole).

Every ``depth`` must be *bit-identical* to ``depth=1``: same stored
pairs, same query values/found masks in stream order, same per-device
transaction counters, same transfer-log records — commits are
sequence-numbered and all table mutation happens on the committer, so
running the stager arbitrarily far ahead may change wall time only.
The properties cover mid-stream coordinated growth, tombstone churn,
and modelled pacing (which must never change results, only seconds).
"""

from __future__ import annotations

import sys

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.growth import GrowthPolicy
from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.pipeline import AsyncCascadeDriver

DEPTHS = (1, 2, 4)


def stream_data(n: int, num_batches: int, seed: int):
    rng = np.random.default_rng(seed)
    keys = rng.permutation(np.arange(1, n + 1, dtype=np.uint64))
    values = rng.integers(0, 1 << 31, size=n).astype(np.uint32)
    return (
        list(zip(np.array_split(keys, num_batches), np.array_split(values, num_batches))),
        keys,
        values,
    )


def table_state(table: DistributedHashTable):
    """Everything a depth could possibly perturb, in comparable form."""
    ks, vs = table.export()
    order = np.argsort(ks, kind="stable")
    return {
        "size": len(table),
        "pairs": (ks[order].tobytes(), vs[order].tobytes()),
        "counters": [d.counter.snapshot() for d in table.topology.devices],
        "log": [
            (r.kind, r.src_device, r.dst_device, r.nbytes, r.tag)
            for r in table.transfer_log.records
        ],
        "capacities": [s.config.capacity for s in table.shards],
    }


def run_stream(depth: int, batches, *, growth=None, churn=False, pace="none"):
    node = p100_nvlink_node(4)
    n = sum(k.shape[0] for k, _ in batches)
    if growth is not None:
        table = DistributedHashTable(node, n // 3, growth=growth)
    else:
        table = DistributedHashTable(node, int(n / 0.8))
    driver = AsyncCascadeDriver(table, depth=depth, pace=pace, scale=20.0)
    ins = driver.insert_stream(iter(batches))
    if churn:
        # tombstone churn between the streams: erase every other batch,
        # then re-insert shifted values — queries cross tombstones
        for i, (k, v) in enumerate(batches):
            if i % 2 == 0:
                erased, _ = table.erase(k, source="device")
                assert erased.all()
        for i, (k, v) in enumerate(batches):
            if i % 2 == 0:
                table.insert(k, v + 1)
    qry = driver.query_stream([k for k, _ in batches])
    return table, ins, qry


def assert_equivalent(results):
    base_table, base_ins, base_qry = results[DEPTHS[0]]
    base_state = table_state(base_table)
    for depth in DEPTHS[1:]:
        table, ins, qry = results[depth]
        assert table_state(table) == base_state, f"depth={depth} table state"
        assert ins.num_ops == base_ins.num_ops
        assert qry.values.tobytes() == base_qry.values.tobytes()
        assert qry.found.tobytes() == base_qry.found.tobytes()
        assert qry.depth == depth


class TestDepthEquivalence:
    @given(
        num_batches=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @examples(10)
    def test_insert_query_bit_identical(self, num_batches, seed):
        batches, _, _ = stream_data(4096, num_batches, seed)
        results = {d: run_stream(d, batches) for d in DEPTHS}
        assert_equivalent(results)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @examples(8)
    def test_mid_stream_growth_bit_identical(self, seed):
        """The stream outgrows the table mid-flight: the coordinated
        grow drains in-flight waves, replays live pairs, and every
        depth lands on identical capacities and contents."""
        batches, _, _ = stream_data(6144, 6, seed)
        growth = GrowthPolicy(max_load=0.85)
        results = {d: run_stream(d, batches, growth=growth) for d in DEPTHS}
        base_caps = table_state(results[1][0])["capacities"]
        assert sum(base_caps) > 6144 // 3  # growth did fire mid-stream
        assert_equivalent(results)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @examples(6)
    def test_tombstone_churn_bit_identical(self, seed):
        batches, _, _ = stream_data(4096, 5, seed)
        results = {d: run_stream(d, batches, churn=True) for d in DEPTHS}
        assert_equivalent(results)
        # churned values really did shift where re-inserted
        _, _, qry = results[1]
        expected = np.concatenate(
            [v + 1 if i % 2 == 0 else v for i, (_, v) in enumerate(batches)]
        )
        assert (qry.values == expected).all()

    def test_modelled_pacing_changes_seconds_not_results(self):
        batches, _, _ = stream_data(4096, 6, 7)
        plain = {d: run_stream(d, batches, pace="none") for d in DEPTHS}
        paced = {d: run_stream(d, batches, pace="modelled") for d in DEPTHS}
        assert_equivalent(plain)
        assert_equivalent(paced)
        assert table_state(plain[1][0]) == table_state(paced[1][0])
        for d in DEPTHS:
            assert (
                paced[d][2].values.tobytes() == plain[d][2].values.tobytes()
            )

    def test_depth_reported_in_to_dict(self):
        batches, _, _ = stream_data(1024, 2, 3)
        _, ins, _ = run_stream(2, batches)
        d = ins.to_dict()
        assert d["depth"] == 2
        assert d["pace"] == "none"
        assert "stall_seconds" in d and "peak_staged_bytes" in d


class TestMeasuredOverlap:
    @pytest.mark.skipif(
        sys.gettrace() is not None,
        reason="measured-makespan comparison is meaningless under a "
        "tracer (coverage/debug): host staging slows ~20x while the "
        "modelled pacing sleeps do not",
    )
    def test_paced_depth2_beats_depth1_measured(self):
        """The acceptance gate in miniature: same modelled device, same
        cascades — depth=2's *measured* makespan drops because staging
        (~7 ms/wave at this size) genuinely overlaps the ~12 ms modelled
        kernel occupancy.  One retry absorbs scheduler-noise flakes; the
        structural win (~10%) must still show."""
        batches, _, _ = stream_data(1 << 20, 8, 11)

        def measured(depth):
            node = p100_nvlink_node(4)
            table = DistributedHashTable(node, 1 << 21)
            driver = AsyncCascadeDriver(
                table, depth=depth, pace="modelled", measure=True,
                scale=500.0,
            )
            return driver.insert_stream(iter(batches)).measured_makespan

        attempts = []
        for _ in range(2):
            m1, m2 = measured(1), measured(2)
            assert m1 is not None and m2 is not None
            attempts.append((m1, m2))
            if m2 < m1:
                return
        raise AssertionError(f"no overlap win across attempts: {attempts}")
