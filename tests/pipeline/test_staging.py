"""Units for the staging arena/budget + scheduler, and the backpressure
and out-of-core guarantees of the ``depth >= 2`` pipeline (§IV-B).

The backpressure tests prove the staging budget *bounds* peak in-flight
bytes (never merely records them); the out-of-core tests ingest a
stream whose one-shot staging footprint exceeds the modelled per-GPU
VRAM margin, which only the bounded pipeline can do.
"""

from __future__ import annotations

import threading
import time

import networkx as nx
import numpy as np
import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.multigpu import DistributedHashTable
from repro.multigpu.topology import NodeTopology
from repro.obs import runtime as obs
from repro.pipeline import (
    AsyncCascadeDriver,
    PipelineAborted,
    PipelineScheduler,
    StagingArena,
    StagingBudget,
)
from repro.simt.device import Device, GPUSpec


def small_node(num_gpus: int, vram_bytes: int) -> NodeTopology:
    """A fully-connected NVLink node of tiny-VRAM cards."""
    spec = GPUSpec(name="tiny", vram_bytes=vram_bytes, mem_bandwidth=1e9)
    devices = [Device(i, spec) for i in range(num_gpus)]
    graph = nx.MultiGraph()
    graph.add_nodes_from(range(num_gpus))
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            graph.add_edge(a, b, bandwidth=20e9)
    return NodeTopology(
        devices=devices,
        nvlink=graph,
        pcie_switch_of={i: i // 4 for i in range(num_gpus)},
        pcie_switch_bandwidth=11e9,
    )


def keyed_batches(n: int, num_batches: int, seed: int = 3):
    keys = np.random.default_rng(seed).permutation(
        np.arange(1, n + 1, dtype=np.uint64)
    )
    values = (keys & 0x7FFFFFFF).astype(np.uint32)
    return list(
        zip(np.array_split(keys, num_batches), np.array_split(values, num_batches))
    ), keys, values


class TestStagingBudget:
    def test_rejects_nonpositive_ceiling(self):
        with pytest.raises(ConfigurationError):
            StagingBudget(0)

    def test_accounting_and_peak(self):
        budget = StagingBudget(100)
        budget.acquire(60)
        budget.acquire(40)
        assert budget.in_flight_bytes == 100
        budget.release(60)
        budget.acquire(10)
        assert budget.in_flight_bytes == 50
        assert budget.peak_bytes == 100

    def test_oversized_cascade_rejected_not_deadlocked(self):
        budget = StagingBudget(64)
        with pytest.raises(AllocationError, match="smaller batches"):
            budget.acquire(65)

    def test_release_more_than_in_flight_rejected(self):
        budget = StagingBudget(64)
        budget.acquire(10)
        with pytest.raises(ConfigurationError):
            budget.release(11)

    def test_full_budget_blocks_until_release(self):
        budget = StagingBudget(100)
        budget.acquire(80)
        acquired = threading.Event()

        def blocked():
            budget.acquire(40)
            acquired.set()

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        assert not acquired.wait(0.1)
        budget.release(80)
        assert acquired.wait(2.0)
        t.join(timeout=2.0)
        assert budget.stalls == 1
        assert budget.stall_seconds > 0
        assert budget.peak_bytes == 80  # the bound held throughout

    def test_abort_wakes_blocked_acquire(self):
        budget = StagingBudget(10)
        budget.acquire(10)
        failed = threading.Event()

        def blocked():
            with pytest.raises(PipelineAborted):
                budget.acquire(5)
            failed.set()

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        time.sleep(0.05)
        budget.abort()
        assert failed.wait(2.0)
        t.join(timeout=2.0)


class TestStagingArena:
    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            StagingArena(0, StagingBudget(10))

    def test_yingyang_rotation(self):
        arena = StagingArena(2, StagingBudget(1 << 20))
        s0 = arena.acquire(0, 8)
        s1 = arena.acquire(1, 8)
        assert (s0.index, s1.index) == (0, 1)
        arena.release(s0, 8)
        s2 = arena.acquire(2, 8)
        assert s2.index == 0  # seqno % depth

    def test_slots_have_private_plan_caches(self):
        arena = StagingArena(3, StagingBudget(1 << 20))
        caches = {id(slot.plans) for slot in arena.slots}
        assert len(caches) == 3

    def test_busy_slot_blocks_until_commit_releases(self):
        arena = StagingArena(2, StagingBudget(1 << 20))
        s0 = arena.acquire(0, 8)
        arena.acquire(1, 8)
        got = threading.Event()

        def wants_slot0_again():
            arena.acquire(2, 8)
            got.set()

        t = threading.Thread(target=wants_slot0_again, daemon=True)
        t.start()
        assert not got.wait(0.1)
        arena.release(s0, 8)
        assert got.wait(2.0)
        t.join(timeout=2.0)
        assert arena.slot_stalls == 1
        assert arena.stall_seconds > 0

    def test_failed_budget_acquire_unbusies_slot(self):
        arena = StagingArena(1, StagingBudget(16))
        with pytest.raises(AllocationError):
            arena.acquire(0, 32)
        # the slot must be claimable again after the failed admission
        slot = arena.acquire(1, 8)
        assert slot.index == 0


class TestScheduler:
    def _arena(self, depth=2):
        return StagingArena(depth, StagingBudget(1 << 20))

    def test_commits_in_sequence_order(self):
        scheduler = PipelineScheduler(self._arena())
        order = []
        out = scheduler.run(
            range(10),
            stage=lambda slot, seqno, payload: payload * 2,
            commit=lambda seqno, staged: order.append(seqno) or staged,
            nbytes=lambda payload: 8,
        )
        assert order == list(range(10))
        assert out == [i * 2 for i in range(10)]

    def test_stage_error_propagates_to_caller(self):
        scheduler = PipelineScheduler(self._arena())

        def stage(slot, seqno, payload):
            if seqno == 3:
                raise ValueError("boom at 3")
            return payload

        with pytest.raises(ValueError, match="boom at 3"):
            scheduler.run(
                range(10),
                stage=stage,
                commit=lambda seqno, staged: staged,
                nbytes=lambda payload: 8,
            )
        assert scheduler.arena.budget.in_flight_bytes == 0

    def test_commit_error_discards_staged_and_releases_budget(self):
        arena = self._arena(depth=4)
        scheduler = PipelineScheduler(arena)
        discarded = []

        def commit(seqno, staged):
            if seqno == 1:
                time.sleep(0.05)  # let the stager run ahead
                raise RuntimeError("commit failed")
            return staged

        with pytest.raises(RuntimeError, match="commit failed"):
            scheduler.run(
                range(8),
                stage=lambda slot, seqno, payload: payload,
                commit=commit,
                nbytes=lambda payload: 8,
                discard=discarded.append,
            )
        assert arena.budget.in_flight_bytes == 0

    def test_generator_payloads_materialize_lazily(self):
        """At most ``depth`` payloads are ever realized ahead of the
        committer — the property that makes out-of-core streams safe."""
        arena = self._arena(depth=2)
        scheduler = PipelineScheduler(arena)
        produced = []
        committed = []

        def gen():
            for i in range(12):
                produced.append(i)
                yield i

        def commit(seqno, staged):
            committed.append(seqno)
            # stager may hold one staged wave + be producing the next
            assert len(produced) - len(committed) <= arena.depth + 1
            return staged

        scheduler.run(
            gen(),
            stage=lambda slot, seqno, payload: payload,
            commit=commit,
            nbytes=lambda payload: 8,
        )
        assert committed == list(range(12))


class TestBackpressure:
    def test_budget_bounds_peak_in_flight_bytes(self):
        batches, keys, values = keyed_batches(1 << 13, 8)
        per_batch = (1 << 13) // 8 * 8  # packed uint64 per pair
        node = small_node(4, 64 << 20)
        table = DistributedHashTable(node, 1 << 14)
        driver = AsyncCascadeDriver(
            table, depth=4, staging_budget=per_batch * 2, pace="modelled",
            scale=50.0,
        )
        res = driver.insert_stream(batches)
        assert res.peak_staged_bytes <= per_batch * 2
        assert res.stall_seconds > 0  # depth 4 wanted more than 2 batches
        assert len(table) == 1 << 13

    def test_stalls_surface_in_obs(self):
        batches, _, _ = keyed_batches(1 << 12, 8)
        per_batch = (1 << 12) // 8 * 8
        node = small_node(2, 64 << 20)
        table = DistributedHashTable(node, 1 << 13)
        with obs.session() as (recorder, metrics):
            driver = AsyncCascadeDriver(
                table, depth=4, staging_budget=per_batch, pace="modelled",
                scale=50.0,
            )
            driver.insert_stream(batches)
        stalls = [s for s in recorder.spans if s.name == "pipeline.stall"]
        assert stalls, "backpressure must trace pipeline.stall spans"
        assert metrics.counter("pipeline.stall.count") >= 1
        assert metrics.counter("pipeline.stall.seconds") > 0
        assert metrics.gauge("queue.pipeline.staging_bytes.peak_depth") <= per_batch


class TestOutOfCore:
    """Streams whose one-shot staging exceeds the modelled VRAM margin."""

    def _vram_for(self, num_gpus: int, capacity: int, margin: int) -> int:
        probe = small_node(num_gpus, 1 << 34)
        table = DistributedHashTable(probe, capacity)
        footprint = max(d.allocated_bytes for d in probe.devices)
        del table
        return footprint + margin

    def _run(self, n: int, num_batches: int, *, depth: int):
        num_gpus = 4
        capacity = int(n / 0.8)
        # VRAM fits the shards plus ~4 staged batches — far below the
        # stream's one-shot staging footprint of n*2 bytes per GPU
        margin = (n // num_batches) * 8 // num_gpus * 4
        node = small_node(num_gpus, self._vram_for(num_gpus, capacity, margin))
        table = DistributedHashTable(node, capacity)
        batches, keys, values = keyed_batches(n, num_batches)

        with pytest.raises(AllocationError):
            table.insert(keys, values)  # monolithic staging cannot fit

        driver = AsyncCascadeDriver(table, depth=depth)
        res = driver.insert_stream(iter(batches))
        assert len(table) == n
        assert res.depth == depth
        assert res.peak_staged_bytes <= margin * num_gpus
        qres = AsyncCascadeDriver(table, depth=depth).query_stream(
            [k for k, _ in batches]
        )
        assert qres.found.all()
        assert (qres.values == np.concatenate([v for _, v in batches])).all()

    def test_out_of_core_ingest(self):
        self._run(1 << 16, 32, depth=2)

    @pytest.mark.slow
    def test_out_of_core_ingest_2_22(self):
        """The tentpole demo: a 2^22 keyspace streams through a node
        whose free VRAM can stage only a few waves at a time."""
        self._run(1 << 22, 64, depth=2)
