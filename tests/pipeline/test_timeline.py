"""Tests for timeline bookkeeping and rendering."""

import pytest

from repro.errors import ScheduleError
from repro.pipeline.timeline import Span, Timeline


def make_timeline():
    tl = Timeline()
    tl.add(Span(batch=0, stage="H2D", resource="pcie_up", start=0.0, end=2.0))
    tl.add(Span(batch=0, stage="INS", resource="vram", start=2.0, end=5.0))
    tl.add(Span(batch=1, stage="H2D", resource="pcie_up", start=2.0, end=4.0))
    return tl


class TestBookkeeping:
    def test_makespan(self):
        assert make_timeline().makespan == 5.0

    def test_empty_makespan(self):
        assert Timeline().makespan == 0.0

    def test_busy_time_and_utilization(self):
        tl = make_timeline()
        assert tl.busy_time("pcie_up") == 4.0
        assert tl.utilization("pcie_up") == pytest.approx(0.8)
        assert tl.utilization("nvlink") == 0.0

    def test_batch_span(self):
        tl = make_timeline()
        assert tl.batch_span(0) == (0.0, 5.0)
        with pytest.raises(ScheduleError):
            tl.batch_span(9)

    def test_stage_totals(self):
        totals = make_timeline().stage_totals()
        assert totals["H2D"] == 4.0
        assert totals["INS"] == 3.0

    def test_invalid_span_rejected(self):
        tl = Timeline()
        with pytest.raises(ScheduleError):
            tl.add(Span(batch=0, stage="x", resource="vram", start=2.0, end=1.0))


class TestInvariantChecks:
    def test_overlap_detected(self):
        tl = Timeline()
        tl.add(Span(0, "A", "vram", 0.0, 2.0))
        tl.add(Span(1, "B", "vram", 1.0, 3.0))
        with pytest.raises(ScheduleError):
            tl.verify_no_overlap()

    def test_adjacent_spans_allowed(self):
        tl = Timeline()
        tl.add(Span(0, "A", "vram", 0.0, 2.0))
        tl.add(Span(1, "B", "vram", 2.0, 3.0))
        tl.verify_no_overlap()

    def test_batch_order_violation_detected(self):
        tl = Timeline()
        tl.add(Span(0, "A", "vram", 0.0, 2.0))
        tl.add(Span(0, "B", "nvlink", 1.0, 3.0))
        with pytest.raises(ScheduleError):
            tl.verify_batch_order()


class TestRender:
    def test_render_has_one_row_per_resource(self):
        out = make_timeline().render()
        assert len(out.splitlines()) == 4  # pcie_up, pcie_down, nvlink, vram

    def test_render_empty(self):
        assert "empty" in Timeline().render()

    def test_render_contains_batch_digits(self):
        out = make_timeline().render(width=40)
        assert "0" in out and "1" in out
