"""Tests for the asynchronous streaming driver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.pipeline.driver import AsyncCascadeDriver
from repro.workloads import BatchStream


@pytest.fixture(scope="module")
def setup():
    node = p100_nvlink_node(4)
    stream = BatchStream(total=8000, batch_size=1000, seed=5)
    pool = np.concatenate([b.keys for b in stream])
    table = DistributedHashTable.for_workload(node, pool, 0.9)
    return node, stream, table


class TestInsertStream:
    def test_all_batches_land(self, setup):
        node, stream, table = setup
        driver = AsyncCascadeDriver(table, num_threads=4)
        res = driver.insert_stream((b.keys, b.values) for b in stream)
        assert len(table) == 8000
        assert res.num_ops == 8000
        assert res.makespan > 0
        res.timeline.verify_no_overlap()

    def test_overlap_reduces_wall_time(self, setup):
        node, stream, table = setup
        driver = AsyncCascadeDriver(table, num_threads=4)
        res = driver.query_stream([b.keys for b in stream])
        assert 0.0 < res.reduction < 0.8
        assert res.makespan <= res.sequential.makespan

    def test_query_results_ordered(self, setup):
        node, stream, table = setup
        driver = AsyncCascadeDriver(table, num_threads=2)
        res = driver.query_stream([b.keys for b in stream])
        expected = np.concatenate([b.values for b in stream])
        assert res.found.all()
        assert (res.values == expected).all()

    def test_scale_projects_ops(self, setup):
        node, stream, table = setup
        driver = AsyncCascadeDriver(table, num_threads=1, scale=100.0)
        res = driver.query_stream([stream.batch(0).keys])
        assert res.num_ops == 100 * stream.batch(0).size

    def test_single_thread_is_sequential(self, setup):
        node, stream, table = setup
        driver = AsyncCascadeDriver(table, num_threads=1)
        res = driver.query_stream([b.keys for b in stream])
        assert res.reduction == pytest.approx(0.0)

    def test_empty_stream(self, setup):
        node, stream, table = setup
        driver = AsyncCascadeDriver(table)
        res = driver.insert_stream([])
        assert res.num_ops == 0 and res.makespan == 0.0

    def test_invalid_params(self, setup):
        _, _, table = setup
        with pytest.raises(ConfigurationError):
            AsyncCascadeDriver(table, num_threads=0)
        with pytest.raises(ConfigurationError):
            AsyncCascadeDriver(table, scale=0)


class TestWallClock:
    def test_disabled_by_default(self, setup):
        node, stream, table = setup
        driver = AsyncCascadeDriver(table, num_threads=2)
        res = driver.query_stream([stream.batch(0).keys])
        assert res.measured is None
        # no measurement was taken: the makespan is None, not a fake 0.0
        assert res.measured_makespan is None

    def test_measured_timeline_attached(self):
        node = p100_nvlink_node(4)
        stream = BatchStream(total=4000, batch_size=1000, seed=6)
        pool = np.concatenate([b.keys for b in stream])
        table = DistributedHashTable.for_workload(node, pool, 0.9)
        driver = AsyncCascadeDriver(table, num_threads=2, wall_clock=True)

        res = driver.insert_stream((b.keys, b.values) for b in stream)
        assert res.measured is not None
        assert res.measured_makespan > 0.0
        # one node-level span per batch plus one distribution span per
        # batch, plus the per-shard kernel spans
        node_spans = res.measured.shard_spans(-1)
        batch_spans = [s for s in node_spans if s.op == "insert batch"]
        dist_spans = [s for s in node_spans if s.op == "insert distribution"]
        assert len(batch_spans) == 4
        assert len(dist_spans) == 4
        assert all(s.duration > 0 for s in dist_spans)
        kernel_spans = [s for s in res.measured.spans if s.shard >= 0]
        assert kernel_spans and all(s.duration > 0 for s in kernel_spans)
        # batches stream one after another on a monotonic clock
        starts = [s.start for s in batch_spans]
        assert starts == sorted(starts)
        # modelled and measured makespans coexist on the same result
        assert res.makespan > 0.0

        qres = driver.query_stream([b.keys for b in stream])
        assert qres.found.all()
        assert qres.measured_makespan > 0.0
        assert qres.measured.busy_seconds > 0.0
        table.free()
