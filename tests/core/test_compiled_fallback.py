"""The numba-less fallback: ``kernels="compiled"`` must degrade cleanly.

With no JIT provider (import forced off via ``REPRO_JIT_PROVIDER=none``)
a ``"compiled"`` request warns once per owner, resolves to ``"fast"``,
produces results identical to an explicit ``"fast"`` run, and every
report / span records the backend **actually used** — never the one
requested.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.kernels_jit import (
    active_provider,
    compiled_available,
    reset_fallback_warnings,
    resolve_kernels,
)
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError
from repro.exec.engine import ShardKernelTask, create_engine
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.obs import runtime as obs
from repro.workloads import random_values, unique_keys


@pytest.fixture(autouse=True)
def fresh_warnings():
    reset_fallback_warnings()
    yield
    reset_fallback_warnings()


@pytest.fixture
def no_provider(monkeypatch):
    monkeypatch.setenv("REPRO_JIT_PROVIDER", "none")


class TestResolution:
    def test_no_provider_resolves_to_fast_and_warns_once(self, no_provider):
        assert active_provider() is None
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_kernels("compiled", owner="T") == "fast"
        # warned already for this owner: the second call must stay silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernels("compiled", owner="T") == "fast"

    def test_each_owner_warns_independently(self, no_provider):
        with pytest.warns(RuntimeWarning):
            resolve_kernels("compiled", owner="A")
        with pytest.warns(RuntimeWarning):
            resolve_kernels("compiled", owner="B")

    def test_other_backends_pass_through(self, no_provider):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernels("fast") == "fast"
            assert resolve_kernels("ref") == "ref"

    def test_invalid_provider_pin_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PROVIDER", "gpu")
        with pytest.raises(ConfigurationError):
            active_provider()

    @pytest.mark.skipif(
        not compiled_available(), reason="no JIT provider on this host"
    )
    def test_instrumented_slots_fall_back(self):
        """slot stores without raw planes (e.g. sanitizer shadows) must
        keep the instrumented fast path."""

        class Shadowed:  # no _keys/_values planes, not an ndarray
            pass

        with pytest.warns(RuntimeWarning, match="sanitizer"):
            assert (
                resolve_kernels("compiled", slots=Shadowed(), owner="S")
                == "fast"
            )


class TestFallbackResults:
    def test_table_results_identical_to_fast(self, no_provider):
        keys = unique_keys(800, seed=3)
        values = random_values(800, seed=4)
        tables = {k: WarpDriveHashTable(1200, group_size=4) for k in ("fast", "compiled")}
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                tables["compiled"].insert(keys, values, kernels="compiled")
            tables["fast"].insert(keys, values, kernels="fast")
            qc = tables["compiled"].query(keys, kernels="compiled")
            qf = tables["fast"].query(keys, kernels="fast")
            assert (tables["compiled"].slots == tables["fast"].slots).all()
            assert (qc[0] == qf[0]).all() and (qc[1] == qf[1]).all()
            assert (
                tables["compiled"].counter.snapshot()
                == tables["fast"].counter.snapshot()
            )
        finally:
            for t in tables.values():
                t.free()

    def test_worker_resolves_independently(self, no_provider):
        """Engines re-resolve in the executing process; the result must
        say what actually ran."""
        keys = unique_keys(400, seed=9)
        with create_engine("serial") as eng:
            table = WarpDriveHashTable(800, group_size=4)
            try:
                task = ShardKernelTask(
                    shard=0,
                    op="insert",
                    slots=table.slots,
                    seq=table.seq,
                    keys=keys,
                    values=keys,
                    shm=table.shm_descriptor(),
                    kernels="compiled",
                )
                with pytest.warns(RuntimeWarning, match="falling back"):
                    res = eng.run([task])[0]
                assert res.kernels == "fast"
            finally:
                table.free()


class TestReportedBackend:
    def _cascade(self, n=600):
        keys = unique_keys(n, seed=13)
        values = random_values(n, seed=14)
        table = DistributedHashTable.for_workload(
            p100_nvlink_node(2), keys, 0.8, group_size=4, kernels="compiled"
        )
        try:
            with obs.session() as (recorder, _):
                report = table.insert(keys, values, source="device")
        finally:
            table.free()
        phase = [s for s in recorder.spans if s.name == "kernel phase"]
        return report, phase

    def test_cascade_report_records_fast_when_fallen_back(self, no_provider):
        with pytest.warns(RuntimeWarning, match="falling back"):
            report, phase = self._cascade()
        assert report.kernels == "fast"
        assert phase and all(s.attrs["kernels"] == "fast" for s in phase)
        assert report.to_dict()["kernels"] == "fast"

    @pytest.mark.skipif(
        not compiled_available(), reason="no JIT provider on this host"
    )
    def test_cascade_report_records_compiled_when_live(self):
        report, phase = self._cascade()
        assert report.kernels == "compiled"
        assert phase and all(
            s.attrs["kernels"] == "compiled" for s in phase
        )

    def test_constructor_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            DistributedHashTable(p100_nvlink_node(2), 256, kernels="ref")
