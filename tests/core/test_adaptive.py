"""Tests for the adaptive group-size table (§VI heuristic)."""

import numpy as np
import pytest

from repro.constants import VALID_GROUP_SIZES
from repro.core.adaptive import AdaptiveWarpDriveTable
from repro.core.table import WarpDriveHashTable
from repro.workloads.distributions import random_values, unique_keys


class TestGroupSwitchingSafety:
    """The design invariant that makes switching legal: the slot walk is
    |g|-independent, so pairs written at one group size are found at any
    other."""

    @pytest.mark.parametrize("g_insert", [1, 4, 32])
    @pytest.mark.parametrize("g_query", [2, 8, 16])
    def test_cross_group_size_retrieval(self, g_insert, g_query):
        n = 2000
        keys = unique_keys(n, seed=1)
        values = random_values(n, seed=2)
        table = WarpDriveHashTable.for_load_factor(n, 0.9, group_size=g_insert)
        table.insert(keys, values)
        # swap the sequence to a different group size, same family
        from repro.core.probing import WindowSequence

        table.seq = WindowSequence(table.config.family, g_query, table.config.p_max)
        got, found = table.query(keys)
        assert found.all() and (got == values).all()

    def test_cross_group_size_update(self):
        keys = unique_keys(500, seed=3)
        table = WarpDriveHashTable.for_load_factor(500, 0.8, group_size=32)
        table.insert(keys, keys)
        from repro.core.probing import WindowSequence

        table.seq = WindowSequence(table.config.family, 2, table.config.p_max)
        table.insert(keys[:100], (keys[:100] + 1).astype(np.uint32))
        assert len(table) == 500  # updates, not duplicates
        got, _ = table.query(keys[:100])
        assert (got == keys[:100] + 1).all()


class TestAdaptiveTable:
    def test_functional_roundtrip_across_retunes(self):
        n = 8000
        keys = unique_keys(n, seed=4)
        values = random_values(n, seed=5)
        table = AdaptiveWarpDriveTable(int(n / 0.95) + 1, group_size=32)
        # four batches drive the load from 0 to 0.95
        for i in range(4):
            sl = slice(i * n // 4, (i + 1) * n // 4)
            table.insert(keys[sl], values[sl])
        got, found = table.query(keys)
        assert found.all() and (got == values).all()

    def test_group_size_grows_with_load(self):
        """'With increasing load larger group sizes get more favorable.'"""
        n = 8000
        keys = unique_keys(n, seed=6)
        table = AdaptiveWarpDriveTable(int(n / 0.99) + 1, group_size=1)
        chosen = []
        for i in range(4):
            sl = slice(i * n // 4, (i + 1) * n // 4)
            table.insert(keys[sl], keys[sl])
            chosen.append(table.current_group_size)
        assert all(g in VALID_GROUP_SIZES for g in chosen)
        assert chosen[-1] >= chosen[0]

    def test_tuning_history_recorded(self):
        table = AdaptiveWarpDriveTable(1000, group_size=32)
        table.insert(unique_keys(100, seed=7), np.zeros(100, dtype=np.uint32))
        assert table.tuning_history  # switched away from 32 immediately
        load, g = table.tuning_history[0]
        assert 0 <= load <= 0.99 and g in VALID_GROUP_SIZES

    def test_erase_works_after_retunes(self):
        keys = unique_keys(1000, seed=8)
        table = AdaptiveWarpDriveTable(2000, group_size=16)
        table.insert(keys, keys)
        erased = table.erase(keys[:50])
        assert erased.all()
        assert len(table) == 950

    def test_adaptive_never_slower_probing_than_worst_fixed(self):
        """The heuristic's probe counts stay within the best/worst fixed
        |g| envelope at the final load."""
        n = 4000
        keys = unique_keys(n, seed=9)
        adaptive = AdaptiveWarpDriveTable(int(n / 0.95) + 1, group_size=1)
        rep_a = adaptive.insert(keys, keys)
        fixed_means = []
        for g in VALID_GROUP_SIZES:
            t = WarpDriveHashTable(int(n / 0.95) + 1, group_size=g)
            fixed_means.append(t.insert(keys, keys).mean_windows)
        assert rep_a.mean_windows <= max(fixed_means) + 0.01
