"""Executor equivalence: the vectorized bulk path must agree with the
faithful Fig. 3 reference kernels on final table *contents*."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.table import WarpDriveHashTable
from repro.simt.scheduler import RandomScheduler, SequentialScheduler
from repro.workloads.distributions import random_values, unique_keys


def sorted_pairs(table):
    k, v = table.export()
    order = np.argsort(k)
    return k[order], v[order]


@pytest.mark.parametrize("g", [1, 4, 32])
def test_fast_matches_ref_contents(g):
    keys = unique_keys(120, seed=31)
    values = random_values(120, seed=32)
    fast = WarpDriveHashTable(160, group_size=g)
    fast.insert(keys, values, executor="fast")
    ref = WarpDriveHashTable(160, group_size=g)
    ref.insert(keys, values, executor="ref")
    fk, fv = sorted_pairs(fast)
    rk, rv = sorted_pairs(ref)
    assert (fk == rk).all() and (fv == rv).all()


@pytest.mark.parametrize("g", [2, 8])
def test_fast_matches_ref_under_interleaving(g):
    """Unique keys: the stored pair *set* is schedule independent, so the
    fast path must match the reference even under adversarial schedules."""
    keys = unique_keys(80, seed=33)
    values = random_values(80, seed=34)
    fast = WarpDriveHashTable(128, group_size=g)
    fast.insert(keys, values)
    ref = WarpDriveHashTable(128, group_size=g)
    ref.insert(keys, values, executor="ref", scheduler=RandomScheduler(seed=5))
    fk, fv = sorted_pairs(fast)
    rk, rv = sorted_pairs(ref)
    assert (fk == rk).all() and (fv == rv).all()


def test_query_results_match():
    keys = unique_keys(100, seed=35)
    values = random_values(100, seed=36)
    t = WarpDriveHashTable(150, group_size=4)
    t.insert(keys, values)
    probe = np.concatenate([keys[:50], np.array([0xFFFF0000], dtype=np.uint32)])
    vf, ff = t.query(probe, executor="fast")
    vr, fr = t.query(probe, executor="ref")
    assert (vf == vr).all() and (ff == fr).all()


def test_erase_results_match():
    keys = unique_keys(60, seed=37)
    t1 = WarpDriveHashTable(100, group_size=4)
    t1.insert(keys, keys)
    t2 = WarpDriveHashTable(100, group_size=4)
    t2.insert(keys, keys)
    e1 = t1.erase(keys[:20], executor="fast")
    e2 = t2.erase(keys[:20], executor="ref")
    assert (e1 == e2).all()
    k1, v1 = sorted_pairs(t1)
    k2, v2 = sorted_pairs(t2)
    assert (k1 == k2).all() and (v1 == v2).all()


def test_duplicate_sequential_semantics_match():
    """With duplicates, sequential ref order = submission order, and the
    fast path's last-writer-wins must agree."""
    keys = np.array([9, 9, 4, 9, 4], dtype=np.uint32)
    values = np.array([1, 2, 3, 4, 5], dtype=np.uint32)
    fast = WarpDriveHashTable(32, group_size=4)
    fast.insert(keys, values)
    ref = WarpDriveHashTable(32, group_size=4)
    ref.insert(keys, values, executor="ref", scheduler=SequentialScheduler())
    fk, fv = sorted_pairs(fast)
    rk, rv = sorted_pairs(ref)
    assert (fk == rk).all() and (fv == rv).all()
    assert fv[fk == 9][0] == 4 and fv[fk == 4][0] == 5


@given(
    n=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=10_000),
    g=st.sampled_from([1, 2, 4, 8, 16, 32]),
)
@settings(max_examples=20, deadline=None)
def test_equivalence_property(n, seed, g):
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    fast = WarpDriveHashTable(2 * n + 4, group_size=g)
    fast.insert(keys, values)
    ref = WarpDriveHashTable(2 * n + 4, group_size=g)
    ref.insert(keys, values, executor="ref")
    fk, fv = sorted_pairs(fast)
    rk, rv = sorted_pairs(ref)
    assert (fk == rk).all() and (fv == rv).all()


def test_transaction_counts_are_comparable():
    """With bounded in-flight waves (as on real hardware) the fast path's
    probe accounting matches the contention-free reference within a small
    factor; the same probe walk underlies both."""
    keys = unique_keys(200, seed=38)
    values = random_values(200, seed=39)
    fast = WarpDriveHashTable(256, group_size=4)
    frep = fast.insert(keys, values, wave_size=8)
    ref = WarpDriveHashTable(256, group_size=4)
    rrep = ref.insert(keys, values, executor="ref")
    assert frep.mean_windows == pytest.approx(rrep.mean_windows, rel=0.25)
