"""Tests for the slot-storage policy layer (``repro.core.store``)."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.constants import EMPTY_SLOT, TOMBSTONE_SLOT
from repro.core.bulk import bulk_erase, bulk_insert, bulk_query
from repro.core.probing import WindowSequence
from repro.core.store import (
    STORE_LAYOUTS,
    CompactPackedView,
    CompactSlotStore,
    PackedSlotStore,
    SoAPackedView,
    SplitSlotStore,
    attach_view,
    compact_slot_bits,
    make_store,
    slot_record_bytes,
)
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError
from repro.hashing.families import make_double_family
from repro.simt.counters import TransactionCounter
from repro.workloads.distributions import random_values, unique_keys


class TestMakeStore:
    def test_layout_vocabulary(self):
        assert set(STORE_LAYOUTS) == {"aos", "soa", "compact"}

    def test_aos_builds_packed(self):
        store = make_store(64, layout="aos")
        assert isinstance(store, PackedSlotStore)
        assert store.view.dtype == np.uint64
        assert (np.asarray(store.view) == EMPTY_SLOT).all()

    def test_soa_builds_split(self):
        store = make_store(64, layout="soa")
        assert isinstance(store, SplitSlotStore)
        assert isinstance(store.view, SoAPackedView)
        assert (np.asarray(store.view) == EMPTY_SLOT).all()

    def test_compact_builds_quotient_store(self):
        store = make_store(64, layout="compact")
        assert isinstance(store, CompactSlotStore)
        assert isinstance(store.view, CompactPackedView)
        assert (np.asarray(store.view) == EMPTY_SLOT).all()

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigurationError, match="layout"):
            make_store(64, layout="columnar")

    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_nbytes_follows_record_width(self, layout):
        """``nbytes`` is layout-derived: 8 B/slot for aos/soa, the
        quotiented record for compact (the perf model reads this)."""
        for capacity in (1 << 10, 1 << 16, 1 << 20):
            store = make_store(capacity, layout=layout)
            assert store.record_bytes == slot_record_bytes(layout, capacity)
            assert store.nbytes == capacity * store.record_bytes

    def test_compact_record_narrows_with_capacity(self):
        widths = {
            1 << 10: 8, 1 << 14: 8, 1 << 16: 7, 1 << 20: 7,
            1 << 24: 6, 1 << 28: 6, 1 << 32: 5,
        }
        for capacity, expect in widths.items():
            assert slot_record_bytes("compact", capacity) == expect
            assert -(-compact_slot_bits(capacity) // 8) == expect
        assert slot_record_bytes("aos", 1 << 24) == 8
        assert slot_record_bytes("soa", 1 << 24) == 8


class TestSoAPackedView:
    def _view(self, capacity=16):
        return make_store(capacity, layout="soa").view

    def test_sentinels_round_trip_bit_exact(self):
        view = self._view()
        assert int(view[0]) == EMPTY_SLOT
        view[3] = np.uint64(TOMBSTONE_SLOT)
        assert int(view[3]) == TOMBSTONE_SLOT
        view.fill(TOMBSTONE_SLOT)
        assert (np.asarray(view) == TOMBSTONE_SLOT).all()

    def test_scalar_get_set(self):
        view = self._view()
        word = np.uint64((7 << 32) | 42)
        view[5] = word
        got = view[5]
        assert isinstance(got, np.uint64) and got == word

    def test_fancy_get_set(self):
        view = self._view()
        idx = np.array([1, 4, 9], dtype=np.int64)
        words = ((np.arange(3, dtype=np.uint64) + 1) << np.uint64(32)) | np.uint64(5)
        view[idx] = words
        assert (view[idx] == words).all()
        # 2-D gather, as the bulk kernels' window loads do
        rows = np.array([[1, 4], [9, 0]], dtype=np.int64)
        window = view[rows]
        assert window.shape == (2, 2) and window.dtype == np.uint64
        assert window[1, 1] == EMPTY_SLOT

    def test_equality_scans_like_packed_array(self):
        view = self._view()
        view[2] = np.uint64(TOMBSTONE_SLOT)
        mask = view == TOMBSTONE_SLOT
        assert mask.sum() == 1 and mask[2]
        assert (view != TOMBSTONE_SLOT).sum() == len(view) - 1

    def test_shape_len_dtype(self):
        view = self._view(10)
        assert view.shape == (10,) and len(view) == 10
        assert view.dtype == np.dtype(np.uint64)

    def test_mismatched_planes_rejected(self):
        with pytest.raises(ConfigurationError):
            SoAPackedView(
                np.zeros(4, dtype=np.uint32), np.zeros(5, dtype=np.uint32)
            )


class TestCompactPackedView:
    """The uint64 facade over the σ-permuted remainder/value planes."""

    def _view(self, capacity=16):
        return make_store(capacity, layout="compact").view

    def test_sentinels_round_trip_bit_exact(self):
        view = self._view()
        assert int(view[0]) == EMPTY_SLOT
        view[3] = np.uint64(TOMBSTONE_SLOT)
        assert int(view[3]) == TOMBSTONE_SLOT
        view.fill(TOMBSTONE_SLOT)
        assert (np.asarray(view) == TOMBSTONE_SLOT).all()

    def test_scalar_get_set(self):
        view = self._view()
        word = np.uint64((7 << 32) | 42)
        view[5] = word
        got = view[5]
        assert isinstance(got, np.uint64) and got == word

    def test_fancy_get_set(self):
        view = self._view()
        idx = np.array([1, 4, 9], dtype=np.int64)
        words = ((np.arange(3, dtype=np.uint64) + 1) << np.uint64(32)) | np.uint64(5)
        view[idx] = words
        assert (view[idx] == words).all()
        rows = np.array([[1, 4], [9, 0]], dtype=np.int64)
        window = view[rows]
        assert window.shape == (2, 2) and window.dtype == np.uint64
        assert window[1, 1] == EMPTY_SLOT

    def test_equality_scans_like_packed_array(self):
        view = self._view()
        view[2] = np.uint64(TOMBSTONE_SLOT)
        mask = view == TOMBSTONE_SLOT
        assert mask.sum() == 1 and mask[2]
        assert (view != TOMBSTONE_SLOT).sum() == len(view) - 1

    def test_rq_plane_is_permuted_not_raw(self):
        """The remainder plane stores σ(key-half), never the raw half —
        drifting to raw storage would silently break the sentinel
        reservation argument (docs/compact_layout.md)."""
        store = make_store(16, layout="compact")
        word = np.uint64((1234 << 32) | 9)
        store.view[0] = word
        assert int(store._rq[0]) != 1234
        assert int(store.view[0]) == int(word)


class TestCompactRoundTrip:
    """Hypothesis: packed ↔ compact conversion is the identity."""

    @given(
        words=st.lists(
            st.one_of(
                st.integers(0, 2**64 - 1),
                st.sampled_from([EMPTY_SLOT, TOMBSTONE_SLOT]),
            ),
            min_size=0,
            max_size=32,
        )
    )
    @examples(60)
    def test_packed_load_round_trips(self, words):
        packed = np.full(32, EMPTY_SLOT, dtype=np.uint64)
        packed[: len(words)] = np.array(words, dtype=np.uint64)
        store = make_store(32, layout="compact")
        store.load_packed(packed)
        assert (np.asarray(store.packed()) == packed).all()
        assert (np.asarray(store.view) == packed).all()
        back = make_store(32, layout="aos")
        back.load_packed(store.packed())
        assert (np.asarray(back.view) == packed).all()


class TestLayoutEquivalence:
    """The layout is invisible to the kernels: bit-identical tables."""

    @pytest.mark.parametrize("g", [1, 4, 32])
    def test_bulk_kernels_bit_identical(self, g):
        family = make_double_family(translation=11)
        seq = WindowSequence(family, g, 256)
        keys = unique_keys(150, seed=21)
        values = random_values(150, seed=22)
        stores = [make_store(256, layout=lay) for lay in STORE_LAYOUTS]
        for store in stores:
            bulk_insert(store.view, seq, keys, values, TransactionCounter())
            bulk_erase(store.view, seq, keys[:40], TransactionCounter())
        packed = [store.packed() for store in stores]
        for a, b in itertools.combinations(packed, 2):
            assert (np.asarray(a) == np.asarray(b)).all()
        for store in stores:
            _, vals, found = bulk_query(
                store.view, seq, keys, TransactionCounter()
            )
            assert (found[40:]).all() and not found[:40].any()
            assert (vals[40:] == values[40:]).all()

    def test_table_slots_match_across_layouts(self):
        keys = unique_keys(200, seed=3)
        values = random_values(200, seed=4)
        family = make_double_family(translation=9)
        # same family in both tables so placements are comparable
        from repro.core.config import HashTableConfig

        cfg = HashTableConfig(capacity=300, group_size=8, family=family)
        tables = [
            WarpDriveHashTable(config=cfg, layout=lay) for lay in STORE_LAYOUTS
        ]
        for t in tables:
            t.insert(keys, values)
            t.erase(keys[:17])
        for a, b in itertools.combinations(tables, 2):
            assert (np.asarray(a.slots) == np.asarray(b.slots)).all()

    @pytest.mark.parametrize("dst_layout", ["soa", "compact"])
    def test_packed_round_trip(self, dst_layout):
        src = make_store(64, layout="aos")
        seq = WindowSequence(make_double_family(translation=2), 4, 64)
        keys = unique_keys(40, seed=5)
        bulk_insert(src.view, seq, keys, keys, TransactionCounter())
        dst = make_store(64, layout=dst_layout)
        dst.load_packed(src.packed())
        assert (np.asarray(dst.view) == np.asarray(src.view)).all()


class TestSharedAttach:
    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_attach_view_sees_parent_writes(self, layout):
        store = make_store(32, layout=layout, shared=True)
        desc = store.descriptor()
        assert desc is not None and desc.layout == layout
        word = np.uint64((123 << 32) | 456)
        store.view[7] = word
        view, segment = attach_view(desc)
        try:
            assert np.uint64(view[7]) == word
            # and the other direction: worker writes, parent reads
            view[9] = np.uint64((1 << 32) | 2)
            assert np.uint64(store.view[9]) == np.uint64((1 << 32) | 2)
        finally:
            del view
            segment.close()
            store.free()

    def test_private_store_has_no_descriptor(self):
        assert make_store(16).descriptor() is None

    def test_attach_rejects_unknown_layout(self):
        store = make_store(16, shared=True)
        desc = store.descriptor()
        try:
            from dataclasses import replace

            bad = replace(desc, layout="columnar")
            with pytest.raises(ConfigurationError, match="layout"):
                attach_view(bad)
        finally:
            store.free()


class TestSanitizerIntegration:
    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_view_carries_sanitizer(self, layout):
        from repro.sanitize.racecheck import RaceChecker

        checker = RaceChecker()
        store = make_store(32, layout=layout, sanitizer=checker)
        assert getattr(store.view, "sanitizer", None) is checker

    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_ref_kernels_run_shadowed(self, layout):
        from repro.perfmodel.specs import P100
        from repro.sanitize.racecheck import RaceChecker
        from repro.simt.device import Device

        device = Device(0, P100)
        device.attach_sanitizer(RaceChecker())
        t = WarpDriveHashTable(64, device=device, layout=layout)
        keys = unique_keys(30, seed=7)
        t.insert(keys, keys, kernels="ref")
        v, f = t.query(keys, kernels="ref")
        assert f.all()
        t.free()


class TestFree:
    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_free_releases_and_empties(self, layout):
        store = make_store(32, layout=layout, shared=True)
        store.free()
        assert len(store.view) == 0
        assert store.descriptor() is None
        store.free()  # idempotent
