"""Tests for the WarpDriveHashTable public API."""

import numpy as np
import pytest

from repro.core.config import HashTableConfig
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError, InsertionError
from repro.perfmodel.specs import P100
from repro.simt.device import Device
from repro.workloads.distributions import random_values, unique_keys


class TestConstruction:
    def test_capacity_or_config_required(self):
        with pytest.raises(ConfigurationError):
            WarpDriveHashTable()

    def test_conflicting_capacity_rejected(self):
        cfg = HashTableConfig(capacity=100)
        with pytest.raises(ConfigurationError):
            WarpDriveHashTable(capacity=50, config=cfg)

    def test_for_load_factor(self):
        t = WarpDriveHashTable.for_load_factor(950, 0.95)
        assert t.capacity == 1000
        assert len(t) == 0
        assert t.load_factor == 0.0

    def test_table_bytes(self):
        assert WarpDriveHashTable(1000).table_bytes == 8000


class TestBasicOperations:
    def test_insert_query_roundtrip(self, small_keys, small_values):
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.9)
        report = t.insert(small_keys, small_values)
        assert report.num_ops == len(small_keys)
        assert len(t) == len(small_keys)
        got, found = t.query(small_keys)
        assert found.all() and (got == small_values).all()

    def test_occupancy_matches_size(self, small_keys, small_values):
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.8)
        t.insert(small_keys, small_values)
        assert t.occupancy() == pytest.approx(t.load_factor)

    def test_contains(self, small_keys, small_values):
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.5)
        t.insert(small_keys, small_values)
        assert t.contains(small_keys[:10]).all()
        assert not t.contains(np.array([0xFFFFFF00], dtype=np.uint32)).any()

    def test_get_scalar(self):
        t = WarpDriveHashTable(64)
        t.insert(np.array([5], dtype=np.uint32), np.array([6], dtype=np.uint32))
        assert t.get(5) == 6
        assert t.get(9) is None
        assert t.get(9, default=-0 + 3) == 3

    def test_update_semantics(self):
        t = WarpDriveHashTable(64)
        keys = np.array([1, 2], dtype=np.uint32)
        t.insert(keys, np.array([10, 20], dtype=np.uint32))
        t.insert(keys, np.array([11, 21], dtype=np.uint32))
        assert len(t) == 2  # updates do not grow the table
        got, _ = t.query(keys)
        assert got.tolist() == [11, 21]

    def test_erase_updates_size(self, small_keys, small_values):
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.7)
        t.insert(small_keys, small_values)
        erased = t.erase(small_keys[:100])
        assert erased.all()
        assert len(t) == len(small_keys) - 100

    def test_erase_duplicate_keys_counted_once(self):
        t = WarpDriveHashTable(64)
        t.insert(np.array([3], dtype=np.uint32), np.array([1], dtype=np.uint32))
        erased = t.erase(np.array([3, 3], dtype=np.uint32))
        assert erased.all()
        assert len(t) == 0

    def test_export_roundtrip(self, small_keys, small_values):
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.9)
        t.insert(small_keys, small_values)
        k, v = t.export()
        order = np.argsort(k)
        src = np.argsort(small_keys)
        assert (k[order] == small_keys[src]).all()
        assert (v[order] == small_values[src]).all()

    def test_clear(self, small_keys, small_values):
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.9)
        t.insert(small_keys, small_values)
        t.clear()
        assert len(t) == 0
        assert not t.contains(small_keys[:5]).any()

    def test_query_default_value(self):
        t = WarpDriveHashTable(32)
        got, found = t.query(np.array([1], dtype=np.uint32), default=123)
        assert not found[0] and got[0] == 123

    def test_unknown_executor_rejected(self):
        t = WarpDriveHashTable(32)
        with pytest.raises(ConfigurationError):
            t.insert(np.array([1], dtype=np.uint32), np.array([1], dtype=np.uint32),
                     executor="magic")


class TestRebuild:
    def test_transparent_rebuild_on_failure(self):
        """A tight probing budget at high load triggers §II's
        invalidate+rebuild with a translated hash function, and the table
        ends up complete anyway.  Everything is seeded, so the rebuild
        count is deterministic."""
        cfg = HashTableConfig(capacity=256, group_size=4, p_max=3, max_rebuilds=8)
        t = WarpDriveHashTable(config=cfg)
        keys = unique_keys(236, seed=20)
        values = random_values(236, seed=21)
        t.insert(keys, values)
        got, found = t.query(keys)
        assert found.all() and (got == values).all()
        assert len(t) == 236

    def test_rebuild_disabled_raises(self):
        cfg = HashTableConfig(capacity=64, group_size=4, p_max=1,
                              rebuild_on_failure=False)
        t = WarpDriveHashTable(config=cfg)
        keys = unique_keys(63, seed=22)
        with pytest.raises(InsertionError):
            t.insert(keys, np.zeros(63, dtype=np.uint32))

    def test_rebuild_budget_exhaustion(self):
        # a table with capacity < n can never hold all keys: every rebuild
        # fails, and the budget must eventually stop the recursion
        cfg = HashTableConfig(capacity=16, p_max=4, max_rebuilds=2)
        t = WarpDriveHashTable(config=cfg)
        keys = unique_keys(32, seed=23)
        with pytest.raises(InsertionError):
            t.insert(keys, np.zeros(32, dtype=np.uint32))
        assert t.rebuilds <= 2 + 1

    def test_rebuild_preserves_previous_contents(self):
        t = WarpDriveHashTable(128, group_size=2, p_max=2)
        first = unique_keys(60, seed=24)
        t.insert(first, first)
        second = unique_keys(130, seed=25)[:60]
        second = second[~np.isin(second, first)][:50]
        t.insert(second, second)
        got, found = t.query(np.concatenate([first, second]))
        assert found.all()


class TestDeviceIntegration:
    def test_table_lives_in_vram(self):
        dev = Device(0, P100)
        t = WarpDriveHashTable(1024, device=dev)
        assert dev.allocated_bytes == 1024 * 8
        t.free()
        assert dev.allocated_bytes == 0

    def test_work_charged_to_device_counter(self, small_keys, small_values):
        dev = Device(0, P100)
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.8, device=dev)
        t.insert(small_keys, small_values)
        assert dev.counter.load_sectors > 0
        assert dev.counter.cas_successes >= len(small_keys)


class TestReports:
    def test_last_report_tracks_latest_op(self, small_keys, small_values):
        t = WarpDriveHashTable.for_load_factor(len(small_keys), 0.8)
        t.insert(small_keys, small_values)
        assert t.last_report.op == "insert"
        t.query(small_keys)
        assert t.last_report.op == "query"

    def test_probe_windows_grow_with_load(self):
        means = []
        for load in (0.5, 0.95):
            t = WarpDriveHashTable.for_load_factor(4096, load, group_size=4)
            keys = unique_keys(4096, seed=26)
            rep = t.insert(keys, keys)
            means.append(rep.mean_windows)
        assert means[1] > means[0]
