"""Tests for slot predicates."""

import numpy as np

from repro.constants import EMPTY_SLOT, MAX_KEY, TOMBSTONE_SLOT
from repro.core.slots import (
    is_empty,
    is_live,
    is_tombstone,
    is_vacant,
    matches_key,
    slot_keys,
    slot_values,
)
from repro.memory.layout import pack_scalar


def make_slots():
    return np.array(
        [EMPTY_SLOT, TOMBSTONE_SLOT, pack_scalar(7, 42), pack_scalar(0, 0)],
        dtype=np.uint64,
    )


class TestPredicates:
    def test_is_empty(self):
        assert is_empty(make_slots()).tolist() == [True, False, False, False]

    def test_is_tombstone(self):
        assert is_tombstone(make_slots()).tolist() == [False, True, False, False]

    def test_is_vacant_includes_both_sentinels(self):
        assert is_vacant(make_slots()).tolist() == [True, True, False, False]

    def test_is_live_complements_vacant(self):
        slots = make_slots()
        assert (is_live(slots) == ~is_vacant(slots)).all()

    def test_scalar_inputs(self):
        assert bool(is_empty(EMPTY_SLOT))
        assert not bool(is_empty(pack_scalar(1, 1)))


class TestKeyExtraction:
    def test_slot_keys_values(self):
        slots = make_slots()
        assert slot_keys(slots)[2] == 7
        assert slot_values(slots)[2] == 42

    def test_matches_key(self):
        slots = make_slots()
        assert matches_key(slots, 7).tolist() == [False, False, True, False]
        assert matches_key(slots, 0).tolist() == [False, False, False, True]

    def test_sentinels_never_match(self):
        """EMPTY decodes to key 0xFFFFFFFF, TOMBSTONE to 0xFFFFFFFE —
        both above MAX_KEY, so no legal key can alias them."""
        slots = np.array([EMPTY_SLOT, TOMBSTONE_SLOT], dtype=np.uint64)
        assert not matches_key(slots, MAX_KEY).any()
        decoded = slot_keys(slots)
        assert (decoded > MAX_KEY).all()

    def test_zero_value_pair_is_live(self):
        """Packed (0, 0) is a legal live slot, not a sentinel."""
        slots = np.array([pack_scalar(0, 0)], dtype=np.uint64)
        assert is_live(slots).all()
