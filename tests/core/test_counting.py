"""Tests for the counting hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MAX_VALUE
from repro.core.counting import CountingHashTable
from repro.errors import ConfigurationError
from repro.workloads.distributions import zipf_keys


class TestBasics:
    def test_add_and_count(self):
        t = CountingHashTable(64)
        t.add(np.array([5, 5, 7], dtype=np.uint32))
        assert t.count(np.array([5, 7, 9], dtype=np.uint32)).tolist() == [2, 1, 0]
        assert len(t) == 2
        assert t.total() == 3

    def test_incremental_batches(self):
        t = CountingHashTable(64)
        for _ in range(5):
            t.add(np.array([3], dtype=np.uint32))
        assert t.count(np.array([3], dtype=np.uint32))[0] == 5

    def test_weighted_amounts(self):
        t = CountingHashTable(64)
        t.add(np.array([1, 1, 2], dtype=np.uint32),
              np.array([10, 5, 7], dtype=np.uint32))
        assert t.count(np.array([1, 2], dtype=np.uint32)).tolist() == [15, 7]

    def test_saturation_not_wraparound(self):
        t = CountingHashTable(16)
        k = np.array([9], dtype=np.uint32)
        t.add(k, MAX_VALUE - 1)
        t.add(k, 10)
        assert t.count(k)[0] == MAX_VALUE

    def test_most_common(self):
        t = CountingHashTable(64)
        t.add(np.array([1] * 5 + [2] * 3 + [3], dtype=np.uint32))
        top = t.most_common(2)
        assert top[0] == (1, 5) and top[1] == (2, 3)

    def test_remove(self):
        t = CountingHashTable(64)
        t.add(np.array([4, 4, 5], dtype=np.uint32))
        removed = t.remove(np.array([4], dtype=np.uint32))
        assert removed.all()
        assert t.count(np.array([4], dtype=np.uint32))[0] == 0
        assert len(t) == 1

    def test_validation(self):
        t = CountingHashTable(16)
        with pytest.raises(ConfigurationError):
            t.add(np.array([1], dtype=np.uint32), np.array([1, 2], dtype=np.uint32))
        with pytest.raises(ConfigurationError):
            t.add(np.array([1], dtype=np.uint32), -1)
        with pytest.raises(ConfigurationError):
            CountingHashTable.for_load_factor(10, 0.0)


class TestHotKeys:
    def test_hot_key_costs_constant_table_traffic(self):
        """The A8 fix: a batch with one key repeated M times performs one
        table update, not M slot claims."""
        t = CountingHashTable(1024)
        hot = np.full(10_000, 42, dtype=np.uint32)
        report = t.add(hot)
        assert report.num_ops == 1  # pre-aggregated to one distinct key
        assert t.count(np.array([42], dtype=np.uint32))[0] == 10_000

    def test_zipf_counter_matches_numpy(self):
        keys = zipf_keys(20_000, s=1.4, universe=500, seed=1)
        t = CountingHashTable.for_load_factor(600, 0.9)
        # stream in 4 batches
        for part in np.array_split(keys, 4):
            t.add(part)
        uniq, counts = np.unique(keys, return_counts=True)
        assert (t.count(uniq) == counts).all()
        assert t.total() == 20_000

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_counter_property(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(1, 40, size=200).astype(np.uint32)
        t = CountingHashTable(128)
        for part in np.array_split(keys, 3):
            if part.size:
                t.add(part)
        uniq, counts = np.unique(keys, return_counts=True)
        assert (t.count(uniq) == counts).all()
