"""Model-based stateful testing: the table against a dict oracle.

Hypothesis drives random interleaved insert/update/erase/query sequences
and cross-checks every observable behaviour against a plain Python dict
with the same semantics (last-writer-wins updates, tombstone deletion).
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.table import WarpDriveHashTable

KEYS = st.integers(min_value=1, max_value=200)
VALUES = st.integers(min_value=0, max_value=10_000)


class TableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # capacity far above the key universe: inserts never fail, so the
        # oracle semantics stay exact
        self.table = WarpDriveHashTable(1024, group_size=4)
        self.model: dict[int, int] = {}

    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        self.table.insert(
            np.array([key], dtype=np.uint32), np.array([value], dtype=np.uint32)
        )
        self.model[key] = value

    @rule(keys=st.lists(KEYS, min_size=1, max_size=8), value=VALUES)
    def bulk_insert(self, keys, value):
        arr = np.array(keys, dtype=np.uint32)
        vals = (np.arange(len(keys)) + value).astype(np.uint32)
        self.table.insert(arr, vals)
        for k, v in zip(keys, vals):
            self.model[k] = int(v)

    @rule(key=KEYS)
    def erase(self, key):
        erased = self.table.erase(np.array([key], dtype=np.uint32))
        assert bool(erased[0]) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def query_one(self, key):
        got, found = self.table.query(np.array([key], dtype=np.uint32))
        if key in self.model:
            assert found[0] and int(got[0]) == self.model[key]
        else:
            assert not found[0]

    @rule()
    def query_everything(self):
        if not self.model:
            return
        keys = np.array(sorted(self.model), dtype=np.uint32)
        got, found = self.table.query(keys)
        assert found.all()
        assert got.tolist() == [self.model[int(k)] for k in keys]

    @invariant()
    def size_matches_model(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def export_matches_model(self):
        k, v = self.table.export()
        exported = dict(zip(k.tolist(), v.tolist()))
        assert exported == self.model


TestTableAgainstDict = TableMachine.TestCase
TestTableAgainstDict.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
