"""Tests for the vectorized bulk executors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import EMPTY_SLOT, TOMBSTONE_SLOT, VALID_GROUP_SIZES
from repro.core.bulk import STATUS, bulk_erase, bulk_insert, bulk_query, default_wave_size
from repro.core.probing import WindowSequence
from repro.hashing.families import make_double_family
from repro.memory.layout import unpack_pairs
from repro.workloads.distributions import random_values, unique_keys


def make_table(capacity, g=4, p_max=256):
    slots = np.full(capacity, EMPTY_SLOT, dtype=np.uint64)
    seq = WindowSequence(make_double_family(), g, p_max)
    return slots, seq


class TestBulkInsert:
    @pytest.mark.parametrize("g", VALID_GROUP_SIZES)
    def test_all_group_sizes_roundtrip(self, g):
        n = 2000
        slots, seq = make_table(int(n / 0.9) + 1, g)
        keys = unique_keys(n, seed=1)
        values = random_values(n, seed=2)
        report, status = bulk_insert(slots, seq, keys, values)
        assert report.failed == 0
        assert (status == STATUS["inserted"]).all()
        _, got, found = bulk_query(slots, seq, keys)
        assert found.all() and (got == values).all()

    def test_table_contents_match_input_exactly(self):
        slots, seq = make_table(1500)
        keys = unique_keys(1000, seed=3)
        values = random_values(1000, seed=4)
        bulk_insert(slots, seq, keys, values)
        live = slots[slots != EMPTY_SLOT]
        k, v = unpack_pairs(live)
        order = np.argsort(k)
        in_order = np.argsort(keys)
        assert (k[order] == keys[in_order]).all()
        assert (v[order] == values[in_order]).all()

    def test_duplicate_keys_last_writer_wins(self):
        slots, seq = make_table(100)
        keys = np.array([5, 5, 5, 9, 5], dtype=np.uint32)
        values = np.array([1, 2, 3, 4, 5], dtype=np.uint32)
        report, status = bulk_insert(slots, seq, keys, values)
        assert int(np.sum(status == STATUS["inserted"])) == 2
        assert int(np.sum(status == STATUS["updated"])) == 3
        _, got, found = bulk_query(slots, seq, np.array([5, 9], dtype=np.uint32))
        assert got.tolist() == [5, 4]

    def test_update_existing_key_across_calls(self):
        slots, seq = make_table(100)
        bulk_insert(slots, seq, np.array([7], dtype=np.uint32), np.array([1], dtype=np.uint32))
        report, status = bulk_insert(
            slots, seq, np.array([7], dtype=np.uint32), np.array([2], dtype=np.uint32)
        )
        assert status[0] == STATUS["updated"]
        _, got, _ = bulk_query(slots, seq, np.array([7], dtype=np.uint32))
        assert got[0] == 2
        # exactly one live slot
        assert int(np.sum(slots != EMPTY_SLOT)) == 1

    def test_full_table_reports_failures(self):
        slots, seq = make_table(32, g=4, p_max=8)
        keys = unique_keys(64, seed=5)
        report, status = bulk_insert(slots, seq, keys, np.zeros(64, dtype=np.uint32))
        assert report.failed == int(np.sum(status == STATUS["failed"]))
        assert report.failed >= 32  # at most 32 can fit
        assert int(np.sum(status == STATUS["inserted"])) == 32

    def test_insert_into_tombstones(self):
        slots, seq = make_table(64)
        keys = unique_keys(32, seed=6)
        bulk_insert(slots, seq, keys, np.zeros(32, dtype=np.uint32))
        bulk_erase(slots, seq, keys[:16])
        assert int(np.sum(slots == TOMBSTONE_SLOT)) == 16
        fresh = unique_keys(40, seed=99)[:16]
        report, status = bulk_insert(slots, seq, fresh, np.ones(16, dtype=np.uint32))
        assert report.failed == 0

    def test_empty_input(self):
        slots, seq = make_table(16)
        report, status = bulk_insert(
            slots, seq, np.array([], dtype=np.uint32), np.array([], dtype=np.uint32)
        )
        assert report.num_ops == 0 and status.size == 0

    def test_probe_windows_recorded_per_item(self):
        slots, seq = make_table(1024)
        keys = unique_keys(512, seed=7)
        report, _ = bulk_insert(slots, seq, keys, np.zeros(512, dtype=np.uint32))
        assert report.probe_windows.shape == (512,)
        assert (report.probe_windows >= 1).all()

    def test_cas_successes_equal_inserts_plus_updates(self):
        slots, seq = make_table(600)
        keys = np.concatenate([unique_keys(400, seed=8)] * 2)
        report, status = bulk_insert(slots, seq, keys, np.arange(800, dtype=np.uint32))
        assert report.cas_successes >= 800  # every op commits once

    def test_wave_size_one_matches_sequential_content(self):
        """wave_size=1 is fully serialized insertion."""
        keys = unique_keys(200, seed=9)
        values = random_values(200, seed=10)
        slots1, seq1 = make_table(256)
        bulk_insert(slots1, seq1, keys, values, wave_size=1)
        slots2, seq2 = make_table(256)
        bulk_insert(slots2, seq2, keys, values, wave_size=64)
        # identical final contents as a set of pairs
        a = np.sort(slots1[slots1 != EMPTY_SLOT])
        b = np.sort(slots2[slots2 != EMPTY_SLOT])
        assert (a == b).all()

    def test_default_wave_size_floor(self):
        assert default_wave_size(10) == 2048
        assert default_wave_size(1 << 20) == (1 << 20) // 32


class TestBulkQuery:
    def test_absent_keys_get_default(self):
        slots, seq = make_table(64)
        keys = unique_keys(32, seed=11)
        bulk_insert(slots, seq, keys, np.zeros(32, dtype=np.uint32))
        absent = np.array([0xFFFFFFF0], dtype=np.uint32)
        report, got, found = bulk_query(slots, seq, absent, default=77)
        assert not found[0] and got[0] == 77
        assert report.failed == 1

    def test_query_empty_table(self):
        slots, seq = make_table(64)
        report, got, found = bulk_query(slots, seq, np.array([5], dtype=np.uint32))
        assert not found.any()
        assert report.mean_windows == 1.0  # first window has empties

    def test_query_does_not_modify_table(self):
        slots, seq = make_table(128)
        keys = unique_keys(64, seed=12)
        bulk_insert(slots, seq, keys, np.zeros(64, dtype=np.uint32))
        before = slots.copy()
        bulk_query(slots, seq, keys)
        assert (slots == before).all()

    def test_tombstone_does_not_stop_probe(self):
        """A tombstone must not terminate the search; an EMPTY must."""
        slots, seq = make_table(64, g=4)
        keys = unique_keys(40, seed=13)
        bulk_insert(slots, seq, keys, np.arange(40, dtype=np.uint32))
        # erase half, then all remaining keys must still be findable
        bulk_erase(slots, seq, keys[::2])
        _, got, found = bulk_query(slots, seq, keys[1::2])
        assert found.all()
        assert (got == np.arange(40, dtype=np.uint32)[1::2]).all()

    def test_query_mixed_present_absent(self):
        slots, seq = make_table(256)
        keys = unique_keys(100, seed=14)
        bulk_insert(slots, seq, keys, keys)
        probe = np.concatenate([keys[:50], np.array([0xFFFFFF00], dtype=np.uint32)])
        _, got, found = bulk_query(slots, seq, probe)
        assert found[:50].all() and not found[50]


class TestBulkErase:
    def test_erase_marks_tombstones(self):
        slots, seq = make_table(64)
        keys = unique_keys(20, seed=15)
        bulk_insert(slots, seq, keys, np.zeros(20, dtype=np.uint32))
        report, erased = bulk_erase(slots, seq, keys[:5])
        assert erased.all()
        assert int(np.sum(slots == TOMBSTONE_SLOT)) == 5
        _, _, found = bulk_query(slots, seq, keys[:5])
        assert not found.any()

    def test_erase_absent_reports_false(self):
        slots, seq = make_table(64)
        report, erased = bulk_erase(slots, seq, np.array([9], dtype=np.uint32))
        assert not erased[0]
        assert report.failed == 1

    def test_erase_duplicates_in_batch(self):
        slots, seq = make_table(64)
        bulk_insert(slots, seq, np.array([3], dtype=np.uint32), np.array([1], dtype=np.uint32))
        _, erased = bulk_erase(slots, seq, np.array([3, 3], dtype=np.uint32))
        assert erased.all()  # both requests succeed on the same slot
        assert int(np.sum(slots == TOMBSTONE_SLOT)) == 1

    def test_erase_then_reinsert_same_key(self):
        slots, seq = make_table(64)
        k = np.array([42], dtype=np.uint32)
        bulk_insert(slots, seq, k, np.array([1], dtype=np.uint32))
        bulk_erase(slots, seq, k)
        report, status = bulk_insert(slots, seq, k, np.array([2], dtype=np.uint32))
        assert status[0] == STATUS["inserted"]
        _, got, found = bulk_query(slots, seq, k)
        assert found[0] and got[0] == 2


class TestRandomizedRoundtrips:
    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_insert_query_roundtrip_property(self, n, seed):
        slots, seq = make_table(2 * n + 8, g=2)
        keys = unique_keys(n, seed=seed)
        values = random_values(n, seed=seed + 1)
        report, status = bulk_insert(slots, seq, keys, values)
        assert report.failed == 0
        _, got, found = bulk_query(slots, seq, keys)
        assert found.all()
        assert (got == values).all()

    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_erase_subset_property(self, n, seed):
        slots, seq = make_table(2 * n, g=4)
        keys = unique_keys(n, seed=seed)
        bulk_insert(slots, seq, keys, keys)
        half = keys[: n // 2]
        _, erased = bulk_erase(slots, seq, half)
        assert erased.all()
        _, _, found = bulk_query(slots, seq, keys)
        assert not found[: n // 2].any()
        assert found[n // 2 :].all()
