"""Tests for the table lifecycle layer: GrowthPolicy, grow(), rebuild obs."""

import numpy as np
import pytest

from repro.core.config import HashTableConfig
from repro.core.growth import GrowthPolicy
from repro.core.partitioned import PartitionedWarpDriveTable
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError, InsertionError
from repro.obs import runtime as obs
from repro.obs.trace import TraceRecorder
from repro.workloads.distributions import random_values, unique_keys


@pytest.fixture
def traced():
    """Scoped obs with a fresh recorder; prior global state restored."""
    with obs.session() as (recorder, _metrics):
        yield recorder


class TestGrowthPolicy:
    def test_defaults(self):
        policy = GrowthPolicy()
        assert 0 < policy.max_load <= 1 and policy.factor > 1

    def test_max_pairs_floor(self):
        assert GrowthPolicy(max_load=0.9).max_pairs(100) == 90
        assert GrowthPolicy(max_load=0.5).max_pairs(7) == 3

    def test_should_grow_threshold(self):
        policy = GrowthPolicy(max_load=0.9)
        assert not policy.should_grow(100, 90)
        assert policy.should_grow(100, 91)

    def test_next_capacity_covers_requirement(self):
        policy = GrowthPolicy(max_load=0.9, factor=2.0)
        target = policy.next_capacity(64, 230)
        assert target > 64
        assert policy.max_pairs(target) >= 230

    def test_next_capacity_is_geometric(self):
        policy = GrowthPolicy(max_load=1.0, factor=2.0)
        assert policy.next_capacity(100, 101) == 200

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_invalid_max_load(self, bad):
        with pytest.raises(ConfigurationError):
            GrowthPolicy(max_load=bad)

    @pytest.mark.parametrize("bad", [1.0, 0.5, -2.0])
    def test_invalid_factor(self, bad):
        with pytest.raises(ConfigurationError):
            GrowthPolicy(factor=bad)

    def test_config_rejects_non_policy(self):
        with pytest.raises(ConfigurationError):
            HashTableConfig(capacity=8, growth=0.9)


class TestConfigGrown:
    def test_keeps_family_and_policies(self):
        cfg = HashTableConfig(capacity=64, probing="double", layout="soa")
        grown = cfg.grown(128)
        assert grown.capacity == 128
        assert grown.family is cfg.family
        assert grown.probing == "double" and grown.layout == "soa"

    @pytest.mark.parametrize("target", [64, 32, 0, -1])
    def test_shrink_rejected(self, target):
        with pytest.raises(ConfigurationError):
            HashTableConfig(capacity=64).grown(target)


class TestExplicitGrow:
    def test_contents_preserved(self):
        t = WarpDriveHashTable(128, group_size=4)
        keys = unique_keys(100, seed=1)
        values = random_values(100, seed=2)
        t.insert(keys, values)
        report = t.grow(512)
        assert t.capacity == 512 and len(t) == 100 and t.grows == 1
        v, f = t.query(keys)
        assert f.all() and (v == values).all()
        assert report is not None and report.op == "rehash"
        assert t.last_rehash_report is report

    def test_empty_table_grow_returns_none(self):
        t = WarpDriveHashTable(64)
        assert t.grow(128) is None
        assert t.capacity == 128 and t.grows == 1

    def test_shrink_raises_and_leaves_table_intact(self):
        t = WarpDriveHashTable(64)
        keys = unique_keys(20, seed=3)
        t.insert(keys, keys)
        with pytest.raises(ConfigurationError):
            t.grow(32)
        assert t.capacity == 64 and len(t) == 20

    def test_rehash_work_charged_to_counter(self):
        t = WarpDriveHashTable(128)
        keys = unique_keys(80, seed=4)
        t.insert(keys, keys)
        probes_before = t.counter.window_probes
        stores_before = t.counter.store_sectors
        t.grow(512)
        assert t.counter.window_probes > probes_before
        assert t.counter.store_sectors > stores_before

    def test_grown_equals_fresh_at_target_capacity(self):
        cfg = HashTableConfig(capacity=128, group_size=8)
        keys = unique_keys(90, seed=5)
        values = random_values(90, seed=6)
        grown = WarpDriveHashTable(config=cfg)
        grown.insert(keys, values)
        grown.grow(512)
        fresh = WarpDriveHashTable(
            config=HashTableConfig(capacity=512, group_size=8, family=cfg.family)
        )
        fresh.insert(keys, values)
        assert (np.asarray(grown.slots) == np.asarray(fresh.slots)).all()

    @pytest.mark.parametrize("layout", ["aos", "soa", "compact"])
    def test_grow_preserves_layout(self, layout):
        t = WarpDriveHashTable(64, layout=layout)
        keys = unique_keys(40, seed=7)
        t.insert(keys, keys)
        t.grow(256)
        assert t.store.layout == layout
        v, f = t.query(keys)
        assert f.all()

    def test_shared_table_reallocates_segment(self):
        t = WarpDriveHashTable(64, shared=True)
        name_before = t.shm_descriptor().name
        keys = unique_keys(30, seed=8)
        t.insert(keys, keys)
        t.grow(256)
        desc = t.shm_descriptor()
        assert desc is not None and desc.name != name_before
        assert desc.capacity == 256
        t.free()

    def test_device_vram_accounting_follows_grow(self):
        from repro.perfmodel.specs import P100
        from repro.simt.device import Device

        dev = Device(0, P100)
        t = WarpDriveHashTable(128, device=dev)
        assert dev.allocated_bytes == 128 * 8
        keys = unique_keys(50, seed=9)
        t.insert(keys, keys)
        t.grow(512)
        assert dev.allocated_bytes == 512 * 8
        t.free()
        assert dev.allocated_bytes == 0


class TestEnsureCapacity:
    def test_noop_without_policy(self):
        t = WarpDriveHashTable(32)
        assert t.ensure_capacity(1000) is None
        assert t.capacity == 32

    def test_noop_under_threshold(self):
        t = WarpDriveHashTable(100, growth=GrowthPolicy(max_load=0.9))
        assert t.ensure_capacity(90) is None
        assert t.capacity == 100

    def test_grows_past_threshold(self):
        t = WarpDriveHashTable(100, growth=GrowthPolicy(max_load=0.9))
        t.ensure_capacity(91)
        assert t.capacity > 100
        assert t.growth.max_pairs(t.capacity) >= 91


class TestPolicyDrivenIngest:
    def test_four_x_ingest_single_table(self):
        """Acceptance: ingest 4x the initial capacity at max_load=0.9."""
        t = WarpDriveHashTable(64, growth=GrowthPolicy(max_load=0.9))
        keys = unique_keys(256, seed=10)
        values = random_values(256, seed=11)
        for ck, cv in zip(np.array_split(keys, 8), np.array_split(values, 8)):
            t.insert(ck, cv)
        assert t.grows >= 1
        assert t.load_factor <= t.growth.max_load + 1e-9
        v, f = t.query(keys)
        assert f.all() and (v == values).all()

    def test_single_oversized_batch(self):
        t = WarpDriveHashTable(64, growth=GrowthPolicy(max_load=0.9))
        keys = unique_keys(400, seed=12)
        t.insert(keys, keys)
        v, f = t.query(keys)
        assert f.all()

    def test_growth_instead_of_insertion_error(self):
        keys = unique_keys(200, seed=13)
        fixed = WarpDriveHashTable(64)
        with pytest.raises(InsertionError):
            fixed.insert(keys, keys)
        growing = WarpDriveHashTable(64, growth=GrowthPolicy(max_load=0.9))
        growing.insert(keys, keys)  # must not raise
        assert len(growing) == 200

    def test_ingest_after_tombstones(self):
        t = WarpDriveHashTable(64, growth=GrowthPolicy(max_load=0.9))
        keys = unique_keys(300, seed=14)
        t.insert(keys[:50], keys[:50])
        t.erase(keys[:25])
        for chunk in np.array_split(keys[50:], 5):
            t.insert(chunk, chunk)
        v, f = t.query(keys)
        assert not f[:25].any() and f[25:].all()


class TestGrowthObservability:
    def test_grow_span_with_rehash_attrs(self, traced):
        t = WarpDriveHashTable(64, growth=GrowthPolicy(max_load=0.9))
        keys = unique_keys(160, seed=15)
        for chunk in np.array_split(keys, 4):
            t.insert(chunk, chunk)
        spans = [s for s in traced.spans if s.name == "grow"]
        assert spans, [s.name for s in traced.spans]
        grown = [s for s in spans if "rehash_probe_windows" in s.attrs]
        assert grown, "no grow span carries a rehash kernel report"
        sp = grown[-1]
        assert sp.category == "lifecycle"
        assert sp.attrs["capacity_to"] > sp.attrs["capacity_from"]
        assert sp.attrs["rehash_probe_windows"] > 0
        assert sp.attrs["rehash_store_sectors"] > 0

    def test_rehash_metrics_counted(self, traced):
        t = WarpDriveHashTable(64, growth=GrowthPolicy(max_load=0.9))
        keys = unique_keys(160, seed=16)
        for chunk in np.array_split(keys, 4):
            t.insert(chunk, chunk)
        metrics = obs.get_metrics()
        assert metrics.counters.get("kernel.rehash.ops", 0) > 0
        assert metrics.counters.get("kernel.rehash.probe_windows", 0) > 0

    def test_rebuild_emits_lifecycle_span(self, traced):
        """Satellite (b): _rebuild_with now records an obs span."""
        # deterministic rebuild workload (same as TestRebuild in test_table)
        cfg = HashTableConfig(capacity=256, group_size=4, p_max=3, max_rebuilds=8)
        t = WarpDriveHashTable(config=cfg)
        keys = unique_keys(236, seed=20)
        t.insert(keys, random_values(236, seed=21))
        assert t.rebuilds >= 1
        spans = [s for s in traced.spans if s.name == "rebuild"]
        assert len(spans) == t.rebuilds
        assert spans[0].category == "lifecycle"
        assert spans[0].attrs["attempt"] >= 1
        assert "live" in spans[0].attrs and "pending" in spans[0].attrs

    def test_no_spans_when_disabled(self):
        recorder = TraceRecorder()
        # obs disabled: grow must not touch any recorder
        t = WarpDriveHashTable(64, growth=GrowthPolicy(max_load=0.9))
        keys = unique_keys(160, seed=18)
        t.insert(keys, keys)
        assert recorder.spans == []


class TestPartitionedGrowth:
    @pytest.mark.parametrize("engine", ["serial", "thread"])
    def test_four_x_ingest(self, engine):
        t = PartitionedWarpDriveTable(
            256,
            max_partition_bytes=512,
            engine=engine,
            growth=GrowthPolicy(max_load=0.9),
        )
        keys = unique_keys(1024, seed=19)
        values = random_values(1024, seed=20)
        for ck, cv in zip(np.array_split(keys, 16), np.array_split(values, 16)):
            t.insert(ck, cv)
        assert sum(s.grows for s in t.subtables) >= 1
        v, f = t.query(keys)
        assert f.all() and (v == values).all()
        t.free()

    @pytest.mark.slow
    def test_four_x_ingest_process_engine(self):
        t = PartitionedWarpDriveTable(
            256,
            max_partition_bytes=512,
            engine="process",
            workers=2,
            growth=GrowthPolicy(max_load=0.9),
        )
        keys = unique_keys(1024, seed=21)
        for chunk in np.array_split(keys, 8):
            t.insert(chunk, chunk)
        assert sum(s.grows for s in t.subtables) >= 1
        v, f = t.query(keys)
        assert f.all() and (v == keys).all()
        t.free()

    def test_explicit_grow(self):
        t = PartitionedWarpDriveTable(256, max_partition_bytes=512)
        keys = unique_keys(100, seed=22)
        t.insert(keys, keys)
        reports = t.grow(1024)
        assert t.capacity >= 1024
        assert reports and all(r.op == "rehash" for r in reports)
        v, f = t.query(keys)
        assert f.all()
        t.free()

    def test_explicit_shrink_rejected(self):
        t = PartitionedWarpDriveTable(256, max_partition_bytes=512)
        with pytest.raises(ConfigurationError):
            t.grow(128)
        t.free()
