"""Growth equivalence: a grown table ≡ a fresh table at the target capacity.

``grow()`` keeps the hash family (``HashTableConfig.grown`` only swaps
the capacity), and the rehash replays live pairs through the real bulk
kernels, so a table grown c0 → c1 must be *bit-identical* — same slot
array, same query results — to a fresh table built at c1 with the same
family and fed the same history.  These property tests enforce that
across |g| ∈ {1, 4, 32}, both storage layouts, tombstone-heavy
histories, and the serial/thread/process shard engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.config import HashTableConfig
from repro.core.growth import GrowthPolicy
from repro.core.partitioned import PartitionedWarpDriveTable
from repro.core.table import WarpDriveHashTable
from repro.hashing.families import make_double_family
from repro.workloads.distributions import random_values, unique_keys


def _history(seed: int, n: int, erase_frac: float):
    """A replayable insert / erase / reinsert history."""
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    n_erase = int(n * erase_frac)
    return [
        ("insert", keys, values),
        ("erase", keys[:n_erase], None),
        ("insert", keys[: n_erase // 2], values[: n_erase // 2] + 1),
    ]


def _replay(table, history):
    for op, keys, values in history:
        if op == "insert":
            table.insert(keys, values)
        else:
            table.erase(keys)


def _final_queryable(history):
    """(keys, expected_values, expected_found) after the whole history."""
    _, keys, values = history[0]
    n_erase = history[1][1].shape[0]
    n_back = history[2][1].shape[0]
    expected = values.copy()
    expected[:n_back] = history[2][2]
    found = np.ones(keys.shape[0], dtype=bool)
    found[n_back:n_erase] = False
    return keys, expected, found


class TestGrownEqualsFresh:
    @pytest.mark.parametrize("group_size", [1, 4, 32])
    @pytest.mark.parametrize("layout", ["aos", "soa", "compact"])
    @given(data=st.data())
    @examples(8)
    def test_bit_identical_slots_and_queries(self, group_size, layout, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        erase_frac = data.draw(
            st.sampled_from([0.0, 0.3, 0.8]), label="erase_frac"
        )
        c0, c1 = 128, 512
        n = data.draw(st.integers(8, 100), label="n")
        family = make_double_family(translation=seed % 97)
        history = _history(seed, n, erase_frac)

        grown = WarpDriveHashTable(
            config=HashTableConfig(
                capacity=c0, group_size=group_size, family=family
            ),
            layout=layout,
        )
        _replay(grown, history)
        # a fresh table never saw the erased keys' tombstones: replay only
        # the *live* pairs, in pre-grow slot order — exactly the sequence
        # the rehash migrates (window placement is insertion-order
        # sensitive when probe windows collide, so any other permutation
        # is not guaranteed bit-identical)
        live_k, live_v = grown.export()
        grown.grow(c1)

        fresh = WarpDriveHashTable(
            config=HashTableConfig(
                capacity=c1, group_size=group_size, family=family
            ),
            layout=layout,
        )
        order = np.argsort(live_k, kind="stable")
        fk, fv = live_k[order], live_v[order]
        gk, gv = grown.export()
        gorder = np.argsort(gk, kind="stable")
        assert (fk == gk[gorder]).all() and (fv == gv[gorder]).all()
        fresh.insert(live_k, live_v)

        assert (
            np.asarray(grown.slots) == np.asarray(fresh.slots)
        ).all(), "grown slot array differs from fresh build"

        keys, expected, found_exp = _final_queryable(history)
        for t in (grown, fresh):
            got, found = t.query(keys)
            assert (found == found_exp).all()
            assert (got[found_exp] == expected[found_exp]).all()

    @given(
        seed=st.integers(0, 2**16),
        chunks=st.integers(2, 6),
    )
    @examples(10)
    def test_policy_ingest_matches_explicit_path(self, seed, chunks):
        """Chunked policy-driven growth ends at a state equivalent to a
        fresh table of the final capacity holding the same pairs."""
        keys = unique_keys(300, seed=seed)
        values = random_values(300, seed=seed + 1)
        family = make_double_family(translation=seed % 53)
        auto = WarpDriveHashTable(
            config=HashTableConfig(
                capacity=64,
                group_size=4,
                family=family,
                growth=GrowthPolicy(max_load=0.9),
            )
        )
        for ck, cv in zip(
            np.array_split(keys, chunks), np.array_split(values, chunks)
        ):
            auto.insert(ck, cv)
        assert auto.grows >= 1
        fresh = WarpDriveHashTable(
            config=HashTableConfig(
                capacity=auto.capacity, group_size=4, family=family
            )
        )
        fresh.insert(keys, values)
        got_a, found_a = auto.query(keys)
        got_f, found_f = fresh.query(keys)
        assert found_a.all() and found_f.all()
        assert (got_a == values).all() and (got_f == values).all()


class TestEngineVariants:
    """Growth under each shard-execution engine ends in the same state."""

    def _ingest(self, engine, workers=None):
        kwargs = {"workers": workers} if workers else {}
        t = PartitionedWarpDriveTable(
            256,
            max_partition_bytes=512,
            engine=engine,
            growth=GrowthPolicy(max_load=0.9),
            **kwargs,
        )
        keys = unique_keys(900, seed=77)
        values = random_values(900, seed=78)
        for ck, cv in zip(np.array_split(keys, 6), np.array_split(values, 6)):
            t.insert(ck, cv)
        got, found = t.query(keys)
        assert found.all() and (got == values).all()
        snapshot = {
            "grows": tuple(s.grows for s in t.subtables),
            "caps": tuple(s.capacity for s in t.subtables),
            "sizes": tuple(len(s) for s in t.subtables),
            "slots": tuple(
                np.asarray(s.slots).tobytes() for s in t.subtables
            ),
        }
        t.free()
        return snapshot

    def test_serial_equals_thread(self):
        assert self._ingest("serial") == self._ingest("thread")

    @pytest.mark.slow
    def test_serial_equals_process(self):
        assert self._ingest("serial") == self._ingest("process", workers=2)
