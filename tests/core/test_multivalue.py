"""Tests for the multi-value hash table (§II extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multivalue import MultiValueHashTable
from repro.errors import ConfigurationError, InsertionError
from repro.workloads.distributions import random_values, unique_keys, zipf_keys


class TestBasics:
    def test_every_pair_gets_a_slot(self):
        t = MultiValueHashTable(100, group_size=4)
        keys = np.array([5, 5, 5, 7], dtype=np.uint32)
        t.insert(keys, np.array([1, 2, 3, 4], dtype=np.uint32))
        assert len(t) == 4
        assert t.count(np.array([5, 7, 9], dtype=np.uint32)).tolist() == [3, 1, 0]

    def test_query_multi_returns_all_values(self):
        t = MultiValueHashTable(64, group_size=2)
        keys = np.full(10, 42, dtype=np.uint32)
        t.insert(keys, np.arange(10, dtype=np.uint32))
        vals = t.query_multi(42)
        assert sorted(vals.tolist()) == list(range(10))

    def test_contains(self):
        t = MultiValueHashTable(64)
        t.insert(np.array([1], dtype=np.uint32), np.array([9], dtype=np.uint32))
        assert t.contains(np.array([1, 2], dtype=np.uint32)).tolist() == [True, False]

    def test_duplicate_values_under_one_key_kept(self):
        t = MultiValueHashTable(64)
        t.insert(np.array([3, 3], dtype=np.uint32), np.array([7, 7], dtype=np.uint32))
        assert t.query_multi(3).tolist() == [7, 7]

    def test_capacity_exhaustion_raises(self):
        t = MultiValueHashTable(8, group_size=4, p_max=4)
        keys = np.full(20, 1, dtype=np.uint32)
        with pytest.raises(InsertionError):
            t.insert(keys, np.arange(20, dtype=np.uint32))

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MultiValueHashTable(0)

    def test_load_factor(self):
        t = MultiValueHashTable(100)
        t.insert(np.full(50, 1, dtype=np.uint32), np.arange(50, dtype=np.uint32))
        assert t.load_factor == pytest.approx(0.5)


class TestZipfWorkload:
    """The use case §V-B points at: CUDPP 'does not support key
    collisions unless a multi-value hash table is used'."""

    @pytest.fixture(scope="class")
    def table(self):
        keys = zipf_keys(6000, s=1.4, universe=300, seed=1)
        t = MultiValueHashTable.for_load_factor(6000, 0.8, group_size=4)
        t.insert(keys, np.arange(6000, dtype=np.uint32))
        return t, keys

    def test_counts_match_multiplicities(self, table):
        t, keys = table
        uniq, counts = np.unique(keys, return_counts=True)
        assert (t.count(uniq) == counts).all()

    def test_query_multi_matches_positions(self, table):
        t, keys = table
        uniq = np.unique(keys)
        for key in uniq[:5]:
            expected = set(np.flatnonzero(keys == key).tolist())
            assert set(t.query_multi(int(key)).tolist()) == expected

    def test_total_pairs_preserved(self, table):
        t, keys = table
        uniq = np.unique(keys)
        assert int(t.count(uniq).sum()) == 6000


class TestMixedGroupSizes:
    @pytest.mark.parametrize("g", [1, 2, 8, 16, 32])
    def test_roundtrip_all_groups(self, g):
        keys = zipf_keys(2000, s=1.5, universe=100, seed=2)
        t = MultiValueHashTable.for_load_factor(2000, 0.7, group_size=g)
        t.insert(keys, np.arange(2000, dtype=np.uint32))
        uniq, counts = np.unique(keys, return_counts=True)
        assert (t.count(uniq) == counts).all()


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=300),
        universe=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=20, deadline=None)
    def test_count_conservation_property(self, n, universe, seed):
        """Sum of per-key counts always equals the number of insertions."""
        rng = np.random.default_rng(seed)
        keys = rng.integers(1, universe + 1, size=n).astype(np.uint32)
        t = MultiValueHashTable(4 * n + 16, group_size=4)
        t.insert(keys, np.arange(n, dtype=np.uint32))
        uniq = np.unique(keys)
        assert int(t.count(uniq).sum()) == n
