"""Tests for HashTableConfig."""

import math

import pytest

from repro.constants import DEFAULT_P_MAX
from repro.core.config import HashTableConfig
from repro.errors import ConfigurationError


class TestConstruction:
    def test_defaults(self):
        cfg = HashTableConfig(capacity=100)
        assert cfg.group_size == 4
        assert cfg.p_max == DEFAULT_P_MAX
        assert cfg.rebuild_on_failure

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            HashTableConfig(capacity=0)

    def test_invalid_group(self):
        with pytest.raises(ConfigurationError):
            HashTableConfig(capacity=10, group_size=3)

    def test_invalid_p_max(self):
        with pytest.raises(ConfigurationError):
            HashTableConfig(capacity=10, p_max=0)

    def test_negative_rebuilds(self):
        with pytest.raises(ConfigurationError):
            HashTableConfig(capacity=10, max_rebuilds=-1)


class TestForLoadFactor:
    def test_capacity_formula(self):
        cfg = HashTableConfig.for_load_factor(950, 0.95)
        assert cfg.capacity == math.ceil(950 / 0.95)

    def test_exact_load_one(self):
        cfg = HashTableConfig.for_load_factor(100, 1.0)
        assert cfg.capacity == 100

    def test_kwargs_forwarded(self):
        cfg = HashTableConfig.for_load_factor(100, 0.5, group_size=16)
        assert cfg.group_size == 16

    def test_invalid_load(self):
        with pytest.raises(ConfigurationError):
            HashTableConfig.for_load_factor(100, 0.0)
        with pytest.raises(ConfigurationError):
            HashTableConfig.for_load_factor(100, 1.5)

    def test_invalid_num_pairs(self):
        with pytest.raises(ConfigurationError):
            HashTableConfig.for_load_factor(0, 0.5)


class TestDerived:
    def test_table_bytes(self):
        assert HashTableConfig(capacity=1000).table_bytes == 8000

    def test_rebuilt_changes_family_only(self):
        cfg = HashTableConfig(capacity=64, group_size=8)
        re = cfg.rebuilt(1)
        assert re.capacity == 64 and re.group_size == 8
        import numpy as np

        xs = np.arange(100, dtype=np.uint32)
        assert not (cfg.family.primary(xs) == re.family.primary(xs)).all()
