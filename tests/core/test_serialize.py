"""Tests for table snapshots."""

import numpy as np
import pytest

from repro.core.serialize import FORMAT_VERSION, load_table, save_table
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError
from repro.workloads.distributions import random_values, unique_keys


@pytest.fixture
def table():
    t = WarpDriveHashTable.for_load_factor(2000, 0.9, group_size=8)
    keys = unique_keys(2000, seed=1)
    t.insert(keys, random_values(2000, seed=2))
    return t, keys


class TestRoundtrip:
    def test_byte_identical_slots(self, table, tmp_path):
        t, keys = table
        path = tmp_path / "snap.npz"
        save_table(t, path)
        loaded = load_table(path)
        assert (loaded.slots == t.slots).all()
        assert len(loaded) == len(t)
        assert loaded.capacity == t.capacity

    def test_queries_work_after_load(self, table, tmp_path):
        t, keys = table
        path = tmp_path / "snap.npz"
        save_table(t, path)
        loaded = load_table(path)
        got_a, found_a = t.query(keys)
        got_b, found_b = loaded.query(keys)
        assert (found_a == found_b).all() and (got_a == got_b).all()

    def test_inserts_continue_after_load(self, table, tmp_path):
        t, keys = table
        path = tmp_path / "snap.npz"
        save_table(t, path)
        loaded = load_table(path)
        fresh = unique_keys(4000, seed=9)
        fresh = fresh[~np.isin(fresh, keys)][:100]
        loaded.insert(fresh, fresh)
        _, found = loaded.query(fresh)
        assert found.all()

    def test_rebuilt_family_survives(self, tmp_path):
        """A table that rebuilt with a translated hash must reload with
        the *translated* family, or every probe walk breaks."""
        t = WarpDriveHashTable.for_load_factor(100, 0.9, group_size=4)
        keys = unique_keys(90, seed=3)
        t.insert(keys, keys)
        t.config = t.config.rebuilt(3)  # simulate a prior rebuild
        from repro.core.probing import WindowSequence

        t.seq = WindowSequence(t.config.family, 4, t.config.p_max)
        t.clear()
        t.insert(keys, keys)
        path = tmp_path / "snap.npz"
        save_table(t, path)
        loaded = load_table(path)
        _, found = loaded.query(keys)
        assert found.all()

    def test_group_size_and_pmax_preserved(self, table, tmp_path):
        t, _ = table
        path = tmp_path / "snap.npz"
        save_table(t, path)
        loaded = load_table(path)
        assert loaded.config.group_size == 8
        assert loaded.config.p_max == t.config.p_max


class TestCompactSnapshots:
    """v3: packed-on-disk slots + the declared modelled record width."""

    @pytest.mark.parametrize("layout", ["aos", "soa", "compact"])
    def test_layout_round_trips(self, layout, tmp_path):
        t = WarpDriveHashTable(2048, group_size=8, layout=layout)
        keys = unique_keys(1500, seed=5)
        t.insert(keys, random_values(1500, seed=6))
        path = tmp_path / "snap.npz"
        save_table(t, path)
        loaded = load_table(path)
        assert loaded.config.layout == layout
        assert (np.asarray(loaded.slots) == np.asarray(t.slots)).all()
        _, found = loaded.query(keys)
        assert found.all()

    def test_header_declares_modelled_width(self, tmp_path):
        import json

        from repro.core.store import slot_record_bytes

        t = WarpDriveHashTable(1 << 16, layout="compact")
        path = tmp_path / "snap.npz"
        save_table(t, path)
        with np.load(path) as a:
            header = json.loads(bytes(a["header"].tobytes()).decode())
        assert header["format_version"] == FORMAT_VERSION == 3
        assert header["bytes_per_slot"] == 7
        assert header["bytes_per_slot"] == slot_record_bytes(
            "compact", 1 << 16
        )
        t.free()

    def test_record_width_drift_detected(self, tmp_path):
        """A snapshot whose declared bytes_per_slot disagrees with the
        live width rules must refuse to load."""
        import json

        t = WarpDriveHashTable(256, layout="compact")
        path = tmp_path / "snap.npz"
        save_table(t, path)
        with np.load(path) as a:
            header = json.loads(bytes(a["header"].tobytes()).decode())
            slots = a["slots"]
        header["bytes_per_slot"] = 3
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps(header).encode(), dtype=np.uint8
            ),
            slots=slots,
        )
        with pytest.raises(ConfigurationError, match="drift"):
            load_table(path)
        t.free()

    def test_v2_snapshot_still_loads(self, tmp_path):
        """Pre-compact snapshots carry no bytes_per_slot: no drift check."""
        import json

        t = WarpDriveHashTable(512, group_size=4, layout="soa")
        keys = unique_keys(300, seed=7)
        t.insert(keys, keys)
        path = tmp_path / "snap.npz"
        save_table(t, path)
        with np.load(path) as a:
            header = json.loads(bytes(a["header"].tobytes()).decode())
            slots = a["slots"]
        header["format_version"] = 2
        del header["bytes_per_slot"]
        np.savez(
            path,
            header=np.frombuffer(
                json.dumps(header).encode(), dtype=np.uint8
            ),
            slots=slots,
        )
        loaded = load_table(path)
        assert loaded.config.layout == "soa"
        _, found = loaded.query(keys)
        assert found.all()
        t.free()


class TestValidation:
    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ConfigurationError):
            load_table(path)

    def test_version_check(self, table, tmp_path):
        import json

        t, _ = table
        path = tmp_path / "snap.npz"
        header = {"format_version": FORMAT_VERSION + 1, "capacity": t.capacity}
        np.savez(
            path,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
            slots=t.slots,
        )
        with pytest.raises(ConfigurationError):
            load_table(path)

    def test_capacity_mismatch_detected(self, table, tmp_path):
        import json

        t, _ = table
        path = tmp_path / "snap.npz"
        save_table(t, path)
        # corrupt: truncate slots
        with np.load(path) as a:
            header = a["header"]
        np.savez(path, header=header, slots=t.slots[:-1])
        with pytest.raises(ConfigurationError):
            load_table(path)
