"""Tests for the partitioned high-capacity table (§VI workaround)."""

import numpy as np
import pytest

from repro.core.partitioned import PartitionedWarpDriveTable
from repro.errors import ConfigurationError
from repro.perfmodel import calibration as cal
from repro.perfmodel.memmodel import cas_degradation
from repro.workloads.distributions import random_values, unique_keys


class TestPartitioning:
    def test_partition_count_from_byte_limit(self):
        # 40000 slots * 8 B = 320 kB; 40 kB limit -> 8 sub-tables
        t = PartitionedWarpDriveTable(40000, max_partition_bytes=40000)
        assert t.num_partitions == 8
        assert t.subtable_bytes <= 40000
        assert t.capacity >= 40000

    def test_default_limit_is_the_cas_knee(self):
        t = PartitionedWarpDriveTable(1000)
        assert t.num_partitions == 1  # tiny table: one partition suffices

    def test_sub_tables_escape_degradation(self):
        """The point of §VI's workaround: sub-tables sit below the knee
        where the monolithic table would degrade."""
        total_bytes = 8 << 30  # an 8 GB map
        capacity = total_bytes // 8
        t = PartitionedWarpDriveTable.__new__(PartitionedWarpDriveTable)
        # compute the partitioning arithmetic without allocating 8 GB
        import math

        parts = max(1, math.ceil(capacity * 8 / cal.CAS_DEGRADE_KNEE_BYTES))
        sub_bytes = math.ceil(capacity / parts) * 8
        assert cas_degradation(total_bytes) < 1.0
        assert cas_degradation(sub_bytes) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PartitionedWarpDriveTable(0)
        with pytest.raises(ConfigurationError):
            PartitionedWarpDriveTable(100, max_partition_bytes=4)


class TestFunctional:
    @pytest.fixture(scope="class")
    def table(self):
        t = PartitionedWarpDriveTable(40000, max_partition_bytes=40000)
        keys = unique_keys(16000, seed=1)
        values = random_values(16000, seed=2)
        t.insert(keys, values)
        return t, keys, values

    def test_roundtrip(self, table):
        t, keys, values = table
        got, found = t.query(keys)
        assert found.all() and (got == values).all()
        assert len(t) == 16000

    def test_absent(self, table):
        t, keys, _ = table
        pool = unique_keys(64000, seed=3)
        absent = pool[~np.isin(pool, keys)][:500]
        _, found = t.query(absent)
        assert not found.any()

    def test_keys_routed_consistently(self, table):
        t, keys, _ = table
        parts = t.partition(keys)
        for p in range(t.num_partitions):
            sk, _ = t.subtables[p].export()
            assert (t.partition(sk) == p).all()

    def test_export_complete(self, table):
        t, keys, values = table
        k, v = t.export()
        assert np.sort(k).tolist() == np.sort(keys).tolist()

    def test_merged_report(self, table):
        t, keys, _ = table
        t.query(keys[:1000])
        rep = t.last_report
        assert rep.num_ops == 1000

    def test_erase_and_update(self):
        t = PartitionedWarpDriveTable(4000, max_partition_bytes=8000)
        keys = unique_keys(1000, seed=4)
        t.insert(keys, keys)
        t.insert(keys[:10], (keys[:10] + 5).astype(np.uint32))
        got, _ = t.query(keys[:10])
        assert (got == keys[:10] + 5).all()
        erased = t.erase(keys[:10])
        assert erased.all()
        assert len(t) == 990
