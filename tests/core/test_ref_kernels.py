"""Tests for the faithful Fig. 3 reference kernels under interleaving.

These are the concurrency ground truth: the generator kernels yield at
memory observation points, and every scheduler (sequential, round-robin,
seeded-random "independent thread scheduling") must preserve the table
invariants — no lost keys, no duplicate slots, CAS-guarded writes.
"""

import numpy as np
import pytest

from repro.constants import EMPTY_SLOT
from repro.core.kernels_ref import erase_task, insert_task, query_task
from repro.core.probing import WindowSequence
from repro.core.slots import is_vacant, slot_keys
from repro.hashing.families import make_double_family
from repro.simt.scheduler import ALL_SCHEDULERS
from repro.simt.warp import CoalescedGroup
from repro.workloads.distributions import random_values, unique_keys


def run_inserts(slots, seq, group, keys, values, scheduler):
    tasks = [
        insert_task(slots, seq, group, int(k), int(v))
        for k, v in zip(keys, values)
    ]
    return scheduler.run(tasks)


def run_queries(slots, seq, group, keys, scheduler):
    tasks = [query_task(slots, seq, group, int(k)) for k in keys]
    return scheduler.run(tasks)


@pytest.fixture(params=list(ALL_SCHEDULERS))
def scheduler(request):
    return ALL_SCHEDULERS[request.param]()


@pytest.fixture(params=[1, 4, 32])
def group(request):
    return CoalescedGroup(request.param)


class TestInsertUnderAllSchedules:
    def test_all_keys_stored_exactly_once(self, scheduler, group):
        n = 96
        slots = np.full(160, EMPTY_SLOT, dtype=np.uint64)
        seq = WindowSequence(make_double_family(), group.size, 64)
        keys = unique_keys(n, seed=3)
        values = random_values(n, seed=4)
        results = run_inserts(slots, seq, group, keys, values, scheduler)
        assert all(status == "inserted" for status, _ in results)
        live = slots[~is_vacant(slots)]
        assert live.size == n
        stored_keys = np.sort(slot_keys(live))
        assert (stored_keys == np.sort(keys)).all()

    def test_concurrent_duplicate_inserts_store_single_copy(self, scheduler, group):
        """Two racing inserts of the same key: one inserts, the other must
        observe it and update — never two live copies."""
        slots = np.full(64, EMPTY_SLOT, dtype=np.uint64)
        seq = WindowSequence(make_double_family(), group.size, 32)
        keys = np.full(8, 1234, dtype=np.uint32)
        values = np.arange(8, dtype=np.uint32)
        results = run_inserts(slots, seq, group, keys, values, scheduler)
        statuses = [s for s, _ in results]
        assert statuses.count("inserted") == 1
        assert statuses.count("updated") == 7
        live = slots[~is_vacant(slots)]
        assert live.size == 1

    def test_insert_failure_after_p_max(self, scheduler):
        group = CoalescedGroup(4)
        slots = np.full(8, EMPTY_SLOT, dtype=np.uint64)
        seq = WindowSequence(make_double_family(), 4, 2)
        keys = unique_keys(16, seed=5)
        results = run_inserts(
            slots, seq, group, keys, np.zeros(16, dtype=np.uint32), scheduler
        )
        statuses = [s for s, _ in results]
        assert statuses.count("inserted") == 8  # table is full
        assert statuses.count("failed") == 8


class TestQueryRef:
    def test_found_and_absent(self, scheduler, group):
        slots = np.full(96, EMPTY_SLOT, dtype=np.uint64)
        seq = WindowSequence(make_double_family(), group.size, 32)
        keys = unique_keys(48, seed=6)
        values = random_values(48, seed=7)
        run_inserts(slots, seq, group, keys, values, ALL_SCHEDULERS["sequential"]())
        results = run_queries(slots, seq, group, keys, scheduler)
        for (status, value, _), expected in zip(results, values):
            assert status == "found" and value == int(expected)
        absent = run_queries(
            slots, seq, group, np.array([0xFFFFFF00], dtype=np.uint32), scheduler
        )
        assert absent[0][0] == "absent"

    def test_concurrent_insert_and_query_event_horizon(self):
        """§II: a key queried while being inserted may be seen or not,
        but the result must be one of the two legal outcomes."""
        from repro.simt.scheduler import RandomScheduler

        slots = np.full(32, EMPTY_SLOT, dtype=np.uint64)
        seq = WindowSequence(make_double_family(), 4, 16)
        group = CoalescedGroup(4)
        tasks = [
            insert_task(slots, seq, group, 42, 99),
            query_task(slots, seq, group, 42),
        ]
        results = RandomScheduler(seed=7).run(tasks)
        ins_status, _ = results[0]
        qry_status, qry_value, _ = results[1]
        assert ins_status == "inserted"
        assert (qry_status, qry_value) in (("found", 99), ("absent", 0))


class TestEraseRef:
    def test_erase_then_absent(self, group):
        slots = np.full(64, EMPTY_SLOT, dtype=np.uint64)
        seq = WindowSequence(make_double_family(), group.size, 32)
        seqsched = ALL_SCHEDULERS["sequential"]()
        keys = unique_keys(24, seed=8)
        run_inserts(slots, seq, group, keys, keys, seqsched)
        results = seqsched.run(
            [erase_task(slots, seq, group, int(k)) for k in keys[:6]]
        )
        assert all(s == "erased" for s, _ in results)
        queries = run_queries(slots, seq, group, keys, seqsched)
        assert [s for s, _, _ in queries[:6]] == ["absent"] * 6
        assert all(s == "found" for s, _, _ in queries[6:])

    def test_erase_absent_key(self, group):
        slots = np.full(16, EMPTY_SLOT, dtype=np.uint64)
        seq = WindowSequence(make_double_family(), group.size, 8)
        results = ALL_SCHEDULERS["sequential"]().run(
            [erase_task(slots, seq, group, 7)]
        )
        assert results[0][0] == "absent"
