"""Tests for KernelReport."""

import numpy as np
import pytest

from repro.constants import SECTOR_BYTES
from repro.core.report import KernelReport


def make(op="insert", probes=(1, 2, 3)):
    return KernelReport(
        op=op,
        num_ops=len(probes),
        probe_windows=np.array(probes, dtype=np.int64),
        load_sectors=10,
        store_sectors=4,
        cas_attempts=5,
        cas_successes=3,
        group_size=4,
    )


class TestDerived:
    def test_window_stats(self):
        rep = make()
        assert rep.total_windows == 6
        assert rep.mean_windows == 2.0
        assert rep.max_windows == 3

    def test_empty_stats(self):
        rep = KernelReport(op="query")
        assert rep.total_windows == 0
        assert rep.mean_windows == 0.0
        assert rep.max_windows == 0

    def test_bytes_touched(self):
        rep = make()
        assert rep.total_sectors == 14
        assert rep.bytes_touched == 14 * SECTOR_BYTES

    def test_window_histogram(self):
        rep = make(probes=(1, 1, 3))
        hist = rep.window_histogram()
        assert hist[1] == 2 and hist[3] == 1


class TestMerge:
    def test_merge_sums_counts(self):
        merged = make().merge(make())
        assert merged.num_ops == 6
        assert merged.load_sectors == 20
        assert merged.cas_attempts == 10
        assert merged.probe_windows.shape == (6,)

    def test_merge_keeps_group_size(self):
        a = make()
        b = KernelReport(op="insert")
        assert a.merge(b).group_size == 4
        assert b.merge(a).group_size == 4

    def test_merge_host_sectors(self):
        a = KernelReport(op="insert", host_load_sectors=2)
        b = KernelReport(op="insert", host_store_sectors=3)
        m = a.merge(b)
        assert m.host_load_sectors == 2 and m.host_store_sectors == 3

    def test_as_dict(self):
        d = make().as_dict()
        assert d["op"] == "insert"
        assert d["mean_windows"] == 2.0
