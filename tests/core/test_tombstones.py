"""Tombstone semantics: the deletion edge cases of open addressing.

These lock in the two-phase insert and full-walk erase guarantees: no
shadowed duplicate copies, no resurrection after erase, tombstone slots
reused without breaking reachability.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import TOMBSTONE_SLOT
from repro.core.table import WarpDriveHashTable
from repro.workloads.distributions import unique_keys


def tiny_table(capacity=16, g=4, p_max=8):
    return WarpDriveHashTable(capacity, group_size=g, p_max=p_max)


class TestShadowing:
    def test_reinsert_after_unrelated_erase_updates_in_place(self):
        """An insert must find its existing copy even when an earlier
        tombstone offers a tempting slot."""
        t = tiny_table()
        keys = np.arange(1, 13, dtype=np.uint32)
        t.insert(keys, keys)
        t.erase(keys[:4])  # scatter tombstones
        before = len(t)
        t.insert(keys[8:9], np.array([999], dtype=np.uint32))
        assert len(t) == before  # update, not a shadow copy
        k, _ = t.export()
        assert np.unique(k).size == k.size  # no duplicate keys stored

    def test_no_resurrection_after_erase(self):
        t = tiny_table()
        keys = np.arange(1, 13, dtype=np.uint32)
        t.insert(keys, keys)
        t.erase(keys[:4])
        t.insert(keys[8:9], np.array([7], dtype=np.uint32))
        t.erase(keys[8:9])
        _, found = t.query(keys[8:9])
        assert not found[0]

    def test_heavy_churn_no_duplicates(self):
        """Many insert/erase cycles over a small key set: the export must
        never contain a key twice."""
        t = tiny_table(capacity=32, g=2, p_max=16)
        keys = np.arange(1, 25, dtype=np.uint32)
        rng = np.random.default_rng(5)
        t.insert(keys[:16], keys[:16])
        for round_ in range(20):
            victims = rng.choice(keys[:16], size=4, replace=False).astype(np.uint32)
            t.erase(victims)
            t.insert(victims, (victims + round_).astype(np.uint32))
            k, _ = t.export()
            assert np.unique(k).size == k.size, f"round {round_}"
        got, found = t.query(keys[:16])
        assert found.all()

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=25, deadline=None)
    def test_churn_property(self, seed):
        rng = np.random.default_rng(seed)
        t = tiny_table(capacity=24, g=4, p_max=16)
        universe = np.arange(1, 19, dtype=np.uint32)
        model: dict[int, int] = {}
        for step in range(12):
            if rng.random() < 0.5 and model:
                victim = np.array(
                    [rng.choice(list(model))], dtype=np.uint32
                )
                t.erase(victim)
                model.pop(int(victim[0]))
            else:
                key = int(rng.choice(universe))
                val = int(rng.integers(0, 1000))
                t.insert(
                    np.array([key], dtype=np.uint32),
                    np.array([val], dtype=np.uint32),
                )
                model[key] = val
        k, v = t.export()
        assert dict(zip(k.tolist(), v.tolist())) == model
        assert np.unique(k).size == k.size
        assert len(t) == len(model)


class TestTombstoneReuse:
    def test_tombstones_are_reclaimed(self):
        t = tiny_table(capacity=16, g=4, p_max=16)
        keys = np.arange(1, 16, dtype=np.uint32)
        t.insert(keys[:12], keys[:12])
        t.erase(keys[:6])
        # six slots reclaimed; six new keys must fit
        fresh = np.arange(100, 106, dtype=np.uint32)
        rep = t.insert(fresh, fresh)
        assert rep.failed == 0
        _, found = t.query(fresh)
        assert found.all()

    def test_erased_slots_do_not_block_queries(self):
        """A tombstone must not terminate another key's probe walk."""
        t = tiny_table(capacity=16, g=1, p_max=16)
        keys = np.arange(1, 15, dtype=np.uint32)
        t.insert(keys, keys)
        t.erase(keys[::2])
        _, found = t.query(keys[1::2])
        assert found.all()

    def test_tombstone_count_visible_in_slots(self):
        t = tiny_table(capacity=32)
        keys = np.arange(1, 17, dtype=np.uint32)
        t.insert(keys, keys)
        t.erase(keys[:5])
        assert int(np.sum(t.slots == TOMBSTONE_SLOT)) == 5

    def test_clear_resets_tombstones(self):
        t = tiny_table(capacity=32)
        keys = np.arange(1, 17, dtype=np.uint32)
        t.insert(keys, keys)
        t.erase(keys[:5])
        t.clear()
        assert int(np.sum(t.slots == TOMBSTONE_SLOT)) == 0


class TestRefExecutorParity:
    def test_ref_insert_also_refuses_to_shadow(self):
        fast = tiny_table()
        ref = tiny_table()
        keys = np.arange(1, 13, dtype=np.uint32)
        for t, ex in ((fast, "fast"), (ref, "ref")):
            t.insert(keys, keys, executor=ex)
            t.erase(keys[:4], executor=ex)
            t.insert(keys[8:9], np.array([999], dtype=np.uint32), executor=ex)
            k, _ = t.export()
            assert np.unique(k).size == k.size, ex
        # identical final contents
        fk, fv = fast.export()
        rk, rv = ref.export()
        assert sorted(zip(fk.tolist(), fv.tolist())) == sorted(
            zip(rk.tolist(), rv.tolist())
        )
