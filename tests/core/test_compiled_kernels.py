"""Bit-identity of the compiled bulk kernels against the fast ones.

``kernels="compiled"`` is a policy with three providers (numba / cc /
interp); whichever one runs, the contract is the same: final slot
contents, statuses, probe-window arrays, every
:class:`~repro.core.report.KernelReport` field, and the merged
transaction-counter snapshots must be **bit-identical** to the
vectorized ``"fast"`` kernels — across group sizes, layouts, probing
policies, tombstone-heavy churn, and growth episodes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.growth import GrowthPolicy
from repro.core.kernels_jit import (
    available_providers,
    compiled_available,
    slot_planes,
    warm,
)
from repro.core.table import WarpDriveHashTable
from repro.obs import runtime as obs
from repro.workloads import random_values, unique_keys

needs_provider = pytest.mark.skipif(
    not compiled_available(), reason="no JIT provider on this host"
)

REPORT_FIELDS = (
    "op",
    "num_ops",
    "load_sectors",
    "store_sectors",
    "cas_attempts",
    "cas_successes",
    "warp_collectives",
    "failed",
    "group_size",
)


def report_tuple(report) -> tuple:
    return tuple(getattr(report, f) for f in REPORT_FIELDS) + (
        report.probe_windows.tobytes(),
    )


def slots_bytes(table) -> bytes:
    layout, packed, kp, vp = slot_planes(table.slots)
    return packed.tobytes() if layout == "aos" else kp.tobytes() + vp.tobytes()


def lifecycle(
    kernels: str,
    *,
    n: int = 1200,
    group_size: int = 4,
    layout: str = "aos",
    probing: str = "window",
    seed: int = 5,
) -> dict:
    """insert → query(hit+miss) → erase → tombstone-heavy reinsert."""
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    probe = np.concatenate([keys, unique_keys(max(n // 2, 1), seed=seed + 2)])
    table = WarpDriveHashTable(
        max(64, int(n / 0.8)),
        group_size=group_size,
        layout=layout,
        probing=probing,
    )
    try:
        irep = table.insert(keys, values, kernels=kernels)
        qvals, qfound = table.query(probe, kernels=kernels)
        erased = table.erase(keys[: n // 2], kernels=kernels)
        rrep = table.insert(
            keys[: n // 2], values[: n // 2] + 1, kernels=kernels
        )
        return {
            "slots": slots_bytes(table),
            "insert": report_tuple(irep),
            "reinsert": report_tuple(rrep),
            "query": (qvals.tobytes(), qfound.tobytes()),
            "erased": erased.tobytes(),
            "counter": table.counter.snapshot(),
            "size": len(table),
        }
    finally:
        table.free()


@needs_provider
class TestBitIdentity:
    @pytest.mark.parametrize("group_size", [1, 4, 32])
    @pytest.mark.parametrize("layout", ["aos", "soa", "compact"])
    def test_lifecycle_matches_fast(self, group_size, layout):
        assert lifecycle(
            "compiled", group_size=group_size, layout=layout
        ) == lifecycle("fast", group_size=group_size, layout=layout)

    @pytest.mark.parametrize("probing", ["window", "double", "linear"])
    def test_probing_policies_match_fast(self, probing):
        assert lifecycle("compiled", probing=probing) == lifecycle(
            "fast", probing=probing
        )

    def test_growth_episodes_match_fast(self):
        """Quarter-capacity start: the compiled path must survive the
        coordinated resize-and-rehash episodes bit-for-bit."""
        n = 2000
        keys = unique_keys(n, seed=41)
        values = random_values(n, seed=42)
        snaps = {}
        for kernels in ("fast", "compiled"):
            table = WarpDriveHashTable(
                max(64, n // 4),
                group_size=4,
                growth=GrowthPolicy(max_load=0.85),
            )
            try:
                for lo in range(0, n, n // 4):
                    table.insert(
                        keys[lo : lo + n // 4],
                        values[lo : lo + n // 4],
                        kernels=kernels,
                    )
                qvals, qfound = table.query(keys, kernels=kernels)
                snaps[kernels] = (
                    slots_bytes(table),
                    table.capacity,
                    qvals.tobytes(),
                    qfound.tobytes(),
                    len(table),
                )
            finally:
                table.free()
        assert snaps["fast"] == snaps["compiled"]

    @examples(15)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=500),
        group_size=st.sampled_from([1, 4, 32]),
        layout=st.sampled_from(["aos", "soa", "compact"]),
    )
    def test_random_workloads_match_fast(self, seed, n, group_size, layout):
        assert lifecycle(
            "compiled", n=n, group_size=group_size, layout=layout, seed=seed
        ) == lifecycle(
            "fast", n=n, group_size=group_size, layout=layout, seed=seed
        )


class TestProviders:
    """Every provider on this host implements the same loops."""

    @pytest.mark.parametrize("provider", available_providers())
    def test_provider_matches_fast(self, provider, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PROVIDER", provider)
        # interp runs the undecorated loop bodies in CPython — keep the
        # workload small so the tier-1 budget holds
        n = 300 if provider == "interp" else 1200
        assert lifecycle("compiled", n=n) == lifecycle("fast", n=n)


@needs_provider
class TestWarmup:
    def test_warm_compiles_once_under_jit_span(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.kernels_jit._LOOPS_CACHE", {}, raising=True
        )
        with obs.session() as (recorder, _):
            assert warm("window", "aos") is True
            compile_spans = [
                s for s in recorder.spans if s.name == "jit_compile"
            ]
            assert len(compile_spans) == 1
            assert compile_spans[0].attrs["kernels"] == "compiled"
            # the span names the resolved policy triple so traces say
            # exactly which compiled instance was built
            assert compile_spans[0].attrs["provider"] in available_providers()
            assert compile_spans[0].attrs["probing"] == "window"
            assert compile_spans[0].attrs["layout"] == "aos"
            # second warm hits the cache — no second compilation span
            assert warm("window", "aos") is True
            assert (
                len([s for s in recorder.spans if s.name == "jit_compile"])
                == 1
            )

    def test_warm_launches_hit_hot_cache(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.kernels_jit._LOOPS_CACHE", {}, raising=True
        )
        warm("window", "aos")
        keys = unique_keys(200, seed=7)
        table = WarpDriveHashTable(512, group_size=4)
        try:
            with obs.session() as (recorder, _):
                table.insert(keys, keys, kernels="compiled")
                assert not [
                    s for s in recorder.spans if s.name == "jit_compile"
                ]
        finally:
            table.free()

    def test_cache_is_keyed_per_policy_pair(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.kernels_jit._LOOPS_CACHE", {}, raising=True
        )
        from repro.core import kernels_jit

        warm("window", "aos")
        warm("window", "soa")
        warm("window", "compact")
        warm("double", "aos")
        assert len(kernels_jit._LOOPS_CACHE) >= 3
