"""Tests for probing sequences — including the paper's group-size
consistency property of the inner loop (§IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import VALID_GROUP_SIZES, WARP_SIZE
from repro.core.probing import (
    DoubleHashProbing,
    LinearProbing,
    QuadraticProbing,
    WindowSequence,
)
from repro.errors import ConfigurationError
from repro.hashing.families import make_double_family, make_hash


class TestClassicSchemes:
    def test_linear_steps_by_one(self):
        p = LinearProbing(make_hash("fmix32"))
        seq = p.sequence(123, 1000, 5)
        diffs = np.diff(seq) % 1000
        assert (diffs == 1).all()

    def test_quadratic_steps(self):
        p = QuadraticProbing(make_hash("fmix32"))
        seq = p.sequence(123, 100000, 4)
        base = seq[0]
        assert seq[1] == (base + 1) % 100000
        assert seq[2] == (base + 4) % 100000
        assert seq[3] == (base + 9) % 100000

    def test_double_hash_step_constant_per_key(self):
        p = DoubleHashProbing(make_double_family())
        seq = p.sequence(77, 1 << 20, 6)
        diffs = np.diff(seq) % (1 << 20)
        assert np.unique(diffs).size == 1

    def test_double_hash_steps_differ_across_keys(self):
        p = DoubleHashProbing(make_double_family())
        s1 = np.diff(p.sequence(1, 1 << 20, 3))[0]
        s2 = np.diff(p.sequence(2, 1 << 20, 3))[0]
        assert s1 != s2

    def test_attempt_zero_is_hash_position(self):
        """s(k, 0) = h(k) for every scheme (§II)."""
        h = make_hash("fmix32")
        keys = np.arange(100, dtype=np.uint32)
        expected = (h(keys).astype(np.uint64) % np.uint64(997)).astype(np.int64)
        for scheme in (
            LinearProbing(h),
            QuadraticProbing(h),
            DoubleHashProbing(make_double_family()),
        ):
            if isinstance(scheme, DoubleHashProbing):
                expected_s = (
                    scheme.family.primary(keys).astype(np.uint64) % np.uint64(997)
                ).astype(np.int64)
                assert (scheme.position(keys, 0, 997) == expected_s).all()
            else:
                assert (scheme.position(keys, 0, 997) == expected).all()

    def test_positions_in_range(self):
        for scheme in (
            LinearProbing(make_hash("fmix32")),
            QuadraticProbing(make_hash("mueller")),
            DoubleHashProbing(make_double_family()),
        ):
            pos = scheme.position(np.arange(1000, dtype=np.uint32), 3, 101)
            assert (0 <= pos).all() and (pos < 101).all()


class TestWindowSequence:
    def test_inner_count(self):
        for g in VALID_GROUP_SIZES:
            seq = WindowSequence(make_double_family(), g, 16)
            assert seq.inner_count == WARP_SIZE // g
            assert seq.max_windows == 16 * seq.inner_count

    def test_window_ref_decomposition(self):
        seq = WindowSequence(make_double_family(), 8, 4)
        ref = seq.window_ref(5)  # inner_count = 4
        assert (ref.outer, ref.inner) == (1, 1)
        with pytest.raises(ConfigurationError):
            seq.window_ref(-1)

    def test_window_slots_are_consecutive(self):
        seq = WindowSequence(make_double_family(), 8, 4)
        rows = seq.window_slots(np.array([42], dtype=np.uint32), 0, 0, 1000)[0]
        diffs = np.diff(rows) % 1000
        assert (diffs == 1).all()

    def test_window_slots_wrap_capacity(self):
        seq = WindowSequence(make_double_family(), 4, 4)
        # find a key whose window wraps
        for key in range(500):
            rows = seq.window_slots(np.array([key], dtype=np.uint32), 0, 0, 37)[0]
            assert (rows < 37).all() and (rows >= 0).all()

    def test_inner_loop_slides_by_group_size(self):
        seq = WindowSequence(make_double_family(), 4, 4)
        key = np.array([9], dtype=np.uint32)
        w0 = seq.window_slots(key, 0, 0, 1 << 20)[0]
        w1 = seq.window_slots(key, 0, 1, 1 << 20)[0]
        assert (w1[0] - w0[0]) % (1 << 20) == 4

    @pytest.mark.parametrize("key", [0, 1, 123456, 0xFFFFFFFD])
    def test_group_size_consistency(self, key):
        """The paper's design invariant: 'the inner probing loop ensures a
        consistent probing scheme in case that the size of g is varied
        over time' — the slots visited over one outer attempt (32 slots)
        are identical for every |g|."""
        family = make_double_family()
        capacity = 1 << 16
        reference = None
        for g in VALID_GROUP_SIZES:
            seq = WindowSequence(family, g, 8)
            visited = seq.visited_slots(key, capacity, seq.inner_count)  # one outer attempt
            if reference is None:
                reference = visited
            else:
                assert (visited == reference).all(), f"|g|={g} diverged"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFD))
    @settings(max_examples=25, deadline=None)
    def test_group_size_consistency_property(self, key):
        family = make_double_family()
        seqs = [WindowSequence(family, g, 2) for g in (1, 4, 32)]
        slots = [s.visited_slots(key, 4099, s.inner_count * 2) for s in seqs]
        assert (slots[0] == slots[1]).all()
        assert (slots[1] == slots[2]).all()

    def test_walk_yields_all_windows(self):
        seq = WindowSequence(make_double_family(), 16, 3)
        windows = list(seq.walk(5, 1024))
        assert len(windows) == seq.max_windows
        ref, rows = windows[0]
        assert (ref.outer, ref.inner) == (0, 0)
        assert rows.shape == (16,)

    def test_outer_attempts_rehash(self):
        """Chaotic probing: distinct outer attempts start at unrelated
        positions (double-hash stride)."""
        seq = WindowSequence(make_double_family(), 32, 4)
        key = np.array([123], dtype=np.uint32)
        starts = [
            int(seq.window_start(key, p, 0, 1 << 24)[0]) for p in range(4)
        ]
        gaps = np.diff(starts) % (1 << 24)
        assert np.unique(gaps).size == 1  # constant stride = g(k)
        assert gaps[0] != 32  # not just the next window

    def test_invalid_inner_rejected(self):
        seq = WindowSequence(make_double_family(), 8, 2)
        with pytest.raises(ConfigurationError):
            seq.window_start(np.array([1], dtype=np.uint32), 0, 4, 100)
