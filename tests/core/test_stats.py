"""Tests for probe-length theory helpers."""

import numpy as np
import pytest

from repro.core.report import KernelReport
from repro.core.stats import (
    expected_insert_windows,
    expected_query_windows,
    probe_histogram_fractions,
    probe_summary,
)
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError
from repro.workloads.distributions import unique_keys


class TestExpectedWindows:
    def test_empty_table_one_window(self):
        assert expected_insert_windows(0.0, 4) == 1.0

    def test_monotone_in_load(self):
        vals = [expected_insert_windows(a, 4) for a in (0.1, 0.5, 0.9, 0.99)]
        assert vals == sorted(vals)

    def test_monotone_decreasing_in_group_size(self):
        vals = [expected_insert_windows(0.95, g) for g in (1, 2, 4, 8, 16, 32)]
        assert vals == sorted(vals, reverse=True)

    def test_known_values(self):
        assert expected_insert_windows(0.95, 1) == pytest.approx(20.0)
        assert expected_insert_windows(0.5, 1) == pytest.approx(2.0)

    def test_load_one_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_insert_windows(1.0, 4)

    def test_query_hit_cheaper_than_insert(self):
        """Hits average over the fill history, so they probe less than a
        fresh insert at the final load."""
        for g in (1, 4, 16):
            assert expected_query_windows(0.9, g) < expected_insert_windows(0.9, g)

    def test_query_miss_equals_insert_expectation(self):
        assert expected_query_windows(0.9, 4, hit_rate=0.0) == pytest.approx(
            expected_insert_windows(0.9, 4)
        )

    def test_theory_brackets_measurement(self):
        """Measured mean insert windows lie between the hit average and
        the final-load bound for small groups (clustering breaks the
        geometric approximation for large windows)."""
        n, load, g = 1 << 14, 0.9, 4
        t = WarpDriveHashTable.for_load_factor(n, load, group_size=g)
        rep = t.insert(unique_keys(n, seed=40), np.zeros(n, dtype=np.uint32))
        upper = expected_insert_windows(load, g)
        lower = 1.0
        assert lower <= rep.mean_windows <= upper * 1.2


class TestReportHelpers:
    def test_probe_summary(self):
        rep = KernelReport(op="insert", num_ops=4,
                           probe_windows=np.array([1, 1, 2, 4]))
        s = probe_summary(rep)
        assert s.count == 4 and s.mean == 2.0 and s.maximum == 4

    def test_histogram_fractions_sum_to_one(self):
        rep = KernelReport(op="insert", num_ops=4,
                           probe_windows=np.array([1, 1, 2, 4]))
        frac = probe_histogram_fractions(rep)
        assert frac.sum() == pytest.approx(1.0)
        assert frac[1] == pytest.approx(0.5)

    def test_empty_report(self):
        rep = KernelReport(op="insert")
        assert probe_summary(rep).count == 0
        assert probe_histogram_fractions(rep).sum() == 0
