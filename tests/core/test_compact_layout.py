"""Cross-layer properties of the compact quotient slot layout.

The contract (``docs/compact_layout.md``): ``layout="compact"`` is
*bit-exact* — every probing policy and kernel backend produces the same
slot words, answers, and per-op reports as ``aos``/``soa``, through
growth episodes and tombstone churn — while the *modelled* footprint
(``SlotStore.nbytes``, ``CascadeReport.table_bytes``, the perf-model
sector term) narrows once the quotient pins enough bits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.growth import GrowthPolicy
from repro.core.kernels_jit import compiled_available
from repro.core.store import STORE_LAYOUTS, make_store, slot_record_bytes
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError
from repro.perfmodel.hashperf import (
    best_group_size,
    predicted_op_seconds,
    predicted_rate,
)
from repro.perfmodel.specs import P100
from repro.simt.counters import TransactionCounter
from repro.workloads.distributions import random_values, unique_keys

KERNELS = ("fast", "ref") + (("compiled",) if compiled_available() else ())
PROBINGS = ("window", "double", "linear")


def churn_state(
    layout: str,
    kernels: str,
    probing: str,
    *,
    n: int = 600,
    capacity: int = 256,
    group_size: int = 4,
    seed: int = 5,
) -> tuple:
    """Full lifecycle fingerprint: grow-under-load, erase half,
    reinsert a quarter over the tombstones, then query everything."""
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    table = WarpDriveHashTable(
        capacity,
        group_size=group_size,
        layout=layout,
        probing=probing,
        growth=GrowthPolicy(max_load=0.8),
    )
    try:
        step = max(1, n // 4)
        for lo in range(0, n, step):
            table.insert(keys[lo : lo + step], values[lo : lo + step],
                         kernels=kernels)
        erased = table.erase(keys[: n // 2], kernels=kernels)
        table.insert(keys[: n // 4], values[: n // 4] + 7, kernels=kernels)
        got, found = table.query(keys, kernels=kernels)
        return (
            np.asarray(table.slots).tobytes(),
            table.capacity,
            len(table),
            got.tobytes(),
            found.tobytes(),
            erased.tobytes(),
            table.counter.snapshot(),
        )
    finally:
        table.free()


class TestChurnBitIdentity:
    """compact == aos == soa under growth + tombstone churn, for every
    probing policy and every kernel backend on this host."""

    @pytest.mark.parametrize("kernels", KERNELS)
    @pytest.mark.parametrize("probing", PROBINGS)
    def test_layouts_agree(self, kernels, probing):
        n = 250 if kernels == "ref" else 600
        states = {
            lay: churn_state(lay, kernels, probing, n=n)
            for lay in STORE_LAYOUTS
        }
        assert states["compact"] == states["aos"] == states["soa"]

    @given(
        seed=st.integers(0, 2**31 - 1),
        group_size=st.sampled_from([1, 4, 32]),
        probing=st.sampled_from(PROBINGS),
    )
    @examples(12)
    def test_random_histories_agree(self, seed, group_size, probing):
        states = {
            lay: churn_state(
                lay, "fast", probing,
                n=300, group_size=group_size, seed=seed,
            )
            for lay in STORE_LAYOUTS
        }
        assert states["compact"] == states["aos"] == states["soa"]

    def test_grown_compact_equals_fresh_replay(self):
        """A compact table grown 256 → 2048 matches a fresh aos table at
        the final capacity fed the same history (growth keeps σ intact:
        rehash replays through packed words, not raw planes)."""
        grown = churn_state("compact", "fast", "window",
                            n=1400, capacity=256)
        assert grown[1] >= 2048  # growth actually happened
        fresh = churn_state("aos", "fast", "window",
                            n=1400, capacity=grown[1])
        # same final capacity -> identical slot words and answers
        assert grown[:6] == fresh[:6]


class TestModelledFootprint:
    """The narrower record is visible to everything that charges bytes."""

    def test_sector_counts_identical_below_crossover(self):
        """Under 2^16 slots the compact record still rounds to 8 B, so
        even the transaction counters must agree exactly."""
        a = churn_state("aos", "fast", "window", capacity=1 << 10)
        c = churn_state("compact", "fast", "window", capacity=1 << 10)
        assert c == a

    def test_wide_groups_load_fewer_sectors_past_crossover(self):
        """g=32 at 2^16 slots: a probe window spans 224 modelled bytes
        (7 sectors) on compact vs 256 (8 sectors) on aos."""
        from repro.core.bulk import bulk_insert, bulk_query
        from repro.core.probing import WindowSequence
        from repro.hashing.families import make_double_family

        capacity = 1 << 16
        assert slot_record_bytes("compact", capacity) == 7
        keys = unique_keys(2000, seed=3)
        values = random_values(2000, seed=4)
        loads = {}
        for lay in ("aos", "compact"):
            store = make_store(capacity, layout=lay)
            seq = WindowSequence(make_double_family(translation=5), 32,
                                 capacity)
            counter = TransactionCounter()
            bulk_insert(store.view, seq, keys, values, counter)
            bulk_query(store.view, seq, keys, counter)
            loads[lay] = counter.load_sectors
        assert loads["compact"] < loads["aos"]

    def test_perfmodel_accepts_record_bytes(self):
        for g in (8, 16, 32):
            narrow = predicted_op_seconds(0.6, g, P100, record_bytes=5)
            wide = predicted_op_seconds(0.6, g, P100, record_bytes=8)
            assert 0 < narrow <= wide
            assert predicted_rate(0.6, g, P100, record_bytes=5) >= \
                predicted_rate(0.6, g, P100, record_bytes=8)
        assert best_group_size(0.6, P100, record_bytes=5) >= 1

    def test_perfmodel_rejects_illegal_record_bytes(self):
        for bad in (0, 9, -1):
            with pytest.raises(ConfigurationError):
                predicted_op_seconds(0.6, 8, P100, record_bytes=bad)

    def test_table_exposes_narrow_nbytes(self):
        capacity = 1 << 16
        aos = WarpDriveHashTable(capacity, layout="aos")
        compact = WarpDriveHashTable(capacity, layout="compact")
        try:
            assert compact.store.record_bytes == 7
            assert aos.store.nbytes == capacity * 8
            assert compact.store.nbytes == capacity * 7
        finally:
            aos.free()
            compact.free()
