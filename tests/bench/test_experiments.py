"""Small-scale smoke tests of the experiment harness.

These run each ``run_*`` experiment at a reduced size and check the
result *structure* plus basic sanity; the paper-shape assertions live in
``tests/integration/test_paper_shapes.py``.
"""

import math

import numpy as np
import pytest

from repro.bench import (
    run_bandwidths,
    run_capacity_sweep,
    run_groupsize_ablation,
    run_layout_ablation,
    run_overlap,
    run_probing_ablation,
    run_scaling,
    run_single_gpu_sweep,
    run_speedup_table,
    run_strategy_ablation,
)


class TestSingleGpuSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_single_gpu_sweep(
            n=1 << 12, loads=(0.5, 0.9), group_sizes=(1, 4, 32)
        )

    def test_series_present(self, sweep):
        assert set(sweep.insert_rates) == {"WD|g|=1", "WD|g|=4", "WD|g|=32", "CUDPP"}
        assert set(sweep.retrieve_rates) == set(sweep.insert_rates)

    def test_rates_positive(self, sweep):
        for series in sweep.insert_rates.values():
            assert all(r > 0 or math.isnan(r) for r in series)
            assert len(series) == 2

    def test_format_contains_tables(self, sweep):
        out = sweep.format()
        assert "INSERTION" in out and "RETRIEVAL" in out

    def test_speedup_helper(self, sweep):
        assert sweep.speedup_over_cudpp(0.9, op="insert") > 0

    def test_zipf_sweep_skips_cudpp(self):
        sweep = run_single_gpu_sweep(
            n=1 << 11, loads=(0.8,), group_sizes=(4,), distribution="zipf"
        )
        assert math.isnan(sweep.insert_rates["CUDPP"][0])

    def test_best_group_helper(self, sweep):
        label = sweep.best_group(1, op="insert")
        assert label.startswith("WD")

    def test_without_cudpp(self):
        sweep = run_single_gpu_sweep(
            n=1 << 10, loads=(0.5,), group_sizes=(4,), include_cudpp=False
        )
        assert "CUDPP" not in sweep.insert_rates

    def test_invalid_group_size_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_single_gpu_sweep(n=1 << 10, loads=(0.5,), group_sizes=(3,))

    def test_speedup_requires_known_load(self, sweep):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            sweep.speedup_over_cudpp(0.42)

    def test_paper_scale_recorded(self, sweep):
        assert sweep.paper_n == 1 << 27
        assert sweep.sim_n == 1 << 12


class TestSpeedupTable:
    def test_structure(self):
        tbl = run_speedup_table(n=1 << 12, loads=(0.8, 0.9, 0.95))
        assert len(tbl.insert_speedups) == 3
        assert "paper" in tbl.format()


class TestScaling:
    def test_structure(self):
        res = run_scaling(n_sim=1 << 11, gpu_counts=(1, 2), paper_exponents=(28,))
        assert set(res.strong) == {"Insert 2^28", "Retrieve 2^28"}
        assert res.strong["Insert 2^28"][0] == pytest.approx(1.0)
        assert "STRONG" in res.format()

    def test_requires_m1_baseline(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_scaling(n_sim=1 << 10, gpu_counts=(2, 4))


class TestCapacity:
    def test_structure(self):
        res = run_capacity_sweep(
            paper_exponents=(28, 32), distributions=("unique",), n_sim=1 << 12
        )
        assert len(res.device_insert["unique"]) == 2
        assert "DEVICE-SIDED INSERT" in res.format()


class TestOverlap:
    def test_structure(self):
        res = run_overlap(num_batches=4, batch_sim=1 << 11, threads=(1, 2))
        assert res.labels == ["Ins1", "Ins2", "Ret1", "Ret2"]
        assert res.reductions[0] == 0.0
        assert res.reductions[1] > 0.0
        assert "Fig. 11" in res.format()


class TestBandwidths:
    def test_anchors_close_to_paper(self):
        res = run_bandwidths(n_sim=1 << 13, num_batches=4)
        assert res.multisplit_accumulated == pytest.approx(210e9, rel=0.15)
        assert res.alltoall_accumulated == pytest.approx(192e9, rel=0.15)
        assert 0.3 < res.host_insert_pcie_fraction < 1.0
        assert "paper" in res.format()


class TestAblations:
    def test_groupsize(self):
        res = run_groupsize_ablation(n=1 << 11, loads=(0.5, 0.9))
        assert len(res.measured_best) == 2
        assert 0.0 <= res.agreement() <= 1.0
        assert "A1" in res.format()

    def test_probing(self):
        res = run_probing_ablation(n=1 << 10, loads=(0.5, 0.9))
        assert set(res.stats) == {"linear", "quadratic", "double"}
        assert "A2" in res.format()

    def test_strategies(self):
        res = run_strategy_ablation(n=1 << 11)
        assert len(res) == 4

    def test_layout(self):
        res = run_layout_ablation()
        assert "A4" in res.format()
        # SoA doubles the traffic for sub-sector windows
        assert res.soa_sectors_per_window[0] == 2 * res.aos_sectors_per_window[0]
