"""Tests for the reproduction scorecard."""

import pytest

from repro.bench.scorecard import (
    PAPER_CLAIMS,
    Claim,
    evaluate_claims,
    format_scorecard,
)


class TestClaimStructure:
    def test_claims_have_unique_ids(self):
        ids = [c.id for c in PAPER_CLAIMS]
        assert len(ids) == len(set(ids))

    def test_every_claim_cites_the_paper(self):
        for c in PAPER_CLAIMS:
            assert c.source.startswith("§") or c.source == "abstract"

    def test_tolerances_reasonable(self):
        for c in PAPER_CLAIMS:
            assert 0 < c.tolerance <= 0.5

    def test_grade_pass_and_miss(self):
        claim = Claim(
            id="x", source="§X", statement="s", paper_value=10.0,
            tolerance=0.1, extract=lambda ctx: ctx["v"],
        )
        assert claim.grade({"v": 10.5}).ok
        assert not claim.grade({"v": 12.0}).ok
        assert claim.grade({"v": 12.0}).deviation == pytest.approx(0.2)


class TestEvaluation:
    @pytest.fixture(scope="class")
    def results(self):
        return evaluate_claims(quick=True, seed=42)

    def test_all_claims_graded(self, results):
        assert len(results) == len(PAPER_CLAIMS)

    def test_strong_majority_pass_at_quick_scale(self, results):
        """Quick scale adds noise; at least 10/12 must still pass, and
        every §V-C bandwidth/overlap anchor must."""
        assert sum(r.ok for r in results) >= len(results) - 2
        must_pass = {
            "multisplit-bandwidth",
            "alltoall-bandwidth",
            "overlap-insert",
            "overlap-retrieve",
        }
        for r in results:
            if r.claim.id in must_pass:
                assert r.ok, r.claim.id

    def test_format_scorecard(self, results):
        out = format_scorecard(results)
        assert "scorecard" in out
        for r in results:
            assert r.claim.id in out
