"""Tier-1 smoke tests for the distribution benchmark suite.

The real measurement (n = 2^18, asserting the ≥2x speedup) lives in
``benchmarks/bench_distribution.py`` outside the tier-1 test paths;
here we only check the suite's structure at a tiny n so it stays well
inside the tier-1 time budget.
"""

import os

import pytest

from repro.bench import (
    distribution_speedup,
    format_distribution_records,
    run_distribution_suite,
)
from repro.bench.distribution import PHASES, DistributionRecord
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def records():
    return run_distribution_suite(n=512, m=4, seed=3, repeats=1)


class TestSuite:
    def test_row_grid_complete(self, records):
        rows = {(r.bench, r.path) for r in records}
        assert rows == {
            (phase, path)
            for phase in PHASES
            for path in ("reference", "fused")
        }

    def test_rows_well_formed(self, records):
        for r in records:
            assert r.n == 512 and r.m == 4
            assert r.seconds >= 0 and r.ops_per_s >= 0

    def test_cpus_recorded(self, records):
        assert all(r.cpus == (os.cpu_count() or 1) for r in records)

    def test_total_is_sum_of_phases(self, records):
        for path in ("reference", "fused"):
            parts = sum(
                r.seconds
                for r in records
                if r.path == path and r.bench != "total"
            )
            (total,) = [
                r.seconds
                for r in records
                if r.path == path and r.bench == "total"
            ]
            assert total == pytest.approx(parts)

    def test_speedup_helper(self, records):
        assert distribution_speedup(records, "total") > 0
        assert distribution_speedup([], "total") == 0.0
        assert distribution_speedup(records, "no-such-phase") == 0.0

    def test_format(self, records):
        text = format_distribution_records(records)
        for phase in PHASES:
            assert phase in text
        assert "vs reference" in text and "host cpus" in text

    def test_bad_repeats(self):
        with pytest.raises(ConfigurationError):
            run_distribution_suite(n=64, repeats=0)

    def test_record_defaults_cpus(self):
        rec = DistributionRecord(
            bench="total", n=1, m=1, path="fused", seconds=1.0, ops_per_s=1.0
        )
        assert rec.cpus >= 1
