"""Tests for the §IV-B distribution-strategy comparison."""

import pytest

from repro.errors import ConfigurationError
from repro.multigpu.strategies import compare_strategies
from repro.multigpu.topology import p100_nvlink_node
from repro.workloads.distributions import random_values, unique_keys


@pytest.fixture(scope="module")
def results():
    node = p100_nvlink_node(4)
    keys = unique_keys(1 << 14, seed=1)
    values = random_values(1 << 14, seed=2)
    return compare_strategies(node, keys, values, load_factor=0.9)


class TestStrategyRanking:
    def test_all_four_strategies_present(self, results):
        assert set(results) == {
            "multisplit_transposition",
            "unstructured",
            "host_sided",
            "system_wide_atomics",
        }

    def test_unstructured_has_fastest_insert(self, results):
        """No communication on the way in — but the paper rejects it for
        its querying cost."""
        ins = {k: v.insert_seconds for k, v in results.items()}
        assert ins["unstructured"] == min(ins.values())

    def test_unstructured_query_worse_than_multisplit(self, results):
        assert (
            results["unstructured"].query_seconds
            > results["multisplit_transposition"].query_seconds
        )

    def test_system_wide_atomics_slowest_insert(self, results):
        """'unreasonably slow in our preliminary experiments' (§IV-B)."""
        ins = {k: v.insert_seconds for k, v in results.items()}
        assert ins["system_wide_atomics"] == max(ins.values())

    def test_host_sided_insert_slower_than_multisplit(self, results):
        """Host RAM reordering costs more than on-device multisplit."""
        assert (
            results["host_sided"].insert_seconds
            > results["multisplit_transposition"].insert_seconds
        )

    def test_multisplit_wins_overall(self, results):
        """The paper's chosen design has the best insert+query total."""
        totals = {k: v.total for k, v in results.items()}
        assert totals["multisplit_transposition"] == min(totals.values())

    def test_too_few_keys_rejected(self):
        import numpy as np

        node = p100_nvlink_node(4)
        with pytest.raises(ConfigurationError):
            compare_strategies(
                node,
                np.array([1], dtype=np.uint32),
                np.array([1], dtype=np.uint32),
            )
