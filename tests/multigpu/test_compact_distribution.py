"""Compact layout through the multi-GPU cascade.

Distribution must be layout-blind on answers and layout-aware on
accounting: a ``layout="compact"`` :class:`DistributedHashTable`
returns bit-identical values/found masks to an ``aos`` one, while its
:class:`CascadeReport` charges the quotiented record width — strictly
fewer modelled VRAM and exchange bytes once the per-shard capacity
crosses 2^16 slots, exactly equal below the crossover.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import PAIR_BYTES
from repro.core.store import slot_record_bytes
from repro.multigpu.distributed_table import DistributedHashTable
from repro.workloads.distributions import random_values, unique_keys

GPUS = 4


def _run(layout: str, cap_per_gpu: int, n: int, seed: int = 9):
    """insert → query → erase through a p100:4 cascade; returns the
    answers and the three per-op reports."""
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    table = DistributedHashTable(
        cap_per_gpu * GPUS, topology=f"p100:{GPUS}", layout=layout
    )
    try:
        ins = table.insert(keys, values)
        got, found, qry = table.query(keys)
        erased, ers = table.erase(keys[: n // 3])
        _, found_after, _ = table.query(keys)
        return {
            "answers": (got.tobytes(), found.tobytes(),
                        erased.tobytes(), found_after.tobytes()),
            "ins": ins,
            "qry": qry,
            "ers": ers,
        }
    finally:
        table.free()


class TestCompactCascade:
    def test_answers_bit_identical_across_layouts(self):
        runs = {
            lay: _run(lay, 1 << 12, 9000) for lay in ("aos", "soa", "compact")
        }
        assert (
            runs["compact"]["answers"]
            == runs["aos"]["answers"]
            == runs["soa"]["answers"]
        )

    def test_reports_carry_layout_and_record(self):
        run = _run("compact", 1 << 12, 4000)
        for rep in (run["ins"], run["qry"], run["ers"]):
            assert rep.layout == "compact"
            assert rep.record_bytes == slot_record_bytes("compact", 1 << 12)
            d = rep.to_dict()
            assert d["schema_version"] == 3
            assert d["layout"] == "compact"
            assert d["record_bytes"] == rep.record_bytes
            assert d["table_bytes"] == rep.table_bytes
        aos = _run("aos", 1 << 12, 4000)["ins"]
        assert aos.layout == "aos" and aos.record_bytes == PAIR_BYTES

    def test_accounting_parity_below_crossover(self):
        """At 2^12 slots/GPU the compact record rounds to 8 B: every
        modelled charge must match aos exactly (no phantom savings)."""
        a, c = _run("aos", 1 << 12, 9000), _run("compact", 1 << 12, 9000)
        for op in ("ins", "qry", "ers"):
            assert c[op].table_bytes == a[op].table_bytes
            assert c[op].alltoall_bytes == a[op].alltoall_bytes
            assert c[op].reverse_bytes == a[op].reverse_bytes

    @pytest.mark.slow
    def test_strictly_fewer_bytes_past_crossover(self):
        """At 2^17 slots/GPU (record 7 B) the compact cascade owes
        strictly fewer VRAM, all-to-all, and reverse bytes at equal n."""
        cap = 1 << 17
        assert slot_record_bytes("compact", cap) == 7
        a, c = _run("aos", cap, 30000), _run("compact", cap, 30000)
        assert c["answers"] == a["answers"]
        for op in ("ins", "qry", "ers"):
            assert c[op].table_bytes < a[op].table_bytes
        assert c["ins"].alltoall_bytes < a["ins"].alltoall_bytes
        assert c["qry"].reverse_bytes < a["qry"].reverse_bytes

    def test_growth_refreshes_table_bytes(self):
        """Commit-time growth widens the shards; the post-commit report
        must charge the grown footprint, not the staged one."""
        cap = 1 << 10
        n = int(cap * GPUS * 0.7)
        keys = unique_keys(n, seed=3)
        table = DistributedHashTable(
            cap * GPUS, topology=f"p100:{GPUS}", layout="compact"
        )
        try:
            before = sum(s.table_bytes for s in table.shards)
            rep = table.insert(keys, random_values(n, seed=4))
            after = sum(s.table_bytes for s in table.shards)
            assert rep.table_bytes == after
            if after > before:  # at 70% aggregate load someone grew
                assert rep.table_bytes > before
        finally:
            table.free()
