"""Tests for the node topology model (Fig. 6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.multigpu.topology import p100_nvlink_node, pcie_only_node


class TestP100Node:
    def test_fully_connected(self):
        node = p100_nvlink_node(4)
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert node.link_bandwidth(a, b) > 0

    def test_eight_links_total(self):
        """Fig. 6: '4×4 bidirectional links' — 6 pairs + 2 augmented."""
        node = p100_nvlink_node(4)
        assert node.nvlink.number_of_edges() == 8

    def test_augmented_pairs_doubled(self):
        node = p100_nvlink_node(4)
        assert node.link_bandwidth(0, 1) == pytest.approx(40e9)
        assert node.link_bandwidth(2, 3) == pytest.approx(40e9)
        assert node.link_bandwidth(0, 2) == pytest.approx(20e9)
        assert node.link_bandwidth(1, 2) == pytest.approx(20e9)

    def test_two_pcie_switches(self):
        node = p100_nvlink_node(4)
        assert node.num_switches == 2
        assert node.pcie_switch_of[0] == node.pcie_switch_of[1]
        assert node.pcie_switch_of[2] == node.pcie_switch_of[3]

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            p100_nvlink_node(4).link_bandwidth(1, 1)

    def test_bisection_bandwidth_positive(self):
        node = p100_nvlink_node(4)
        # worst split {0,1}|{2,3}: four single links cross = 80 GB/s
        assert node.bisection_bandwidth() == pytest.approx(80e9)

    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_smaller_nodes(self, m):
        node = p100_nvlink_node(m)
        assert node.num_devices == m

    def test_invalid_gpu_count(self):
        with pytest.raises(ConfigurationError):
            p100_nvlink_node(0)
        with pytest.raises(ConfigurationError):
            p100_nvlink_node(9)


class TestAllToAllTime:
    def test_uniform_traffic(self):
        node = p100_nvlink_node(4)
        traffic = np.full((4, 4), 20e9, dtype=np.float64)
        np.fill_diagonal(traffic, 0)
        t = node.alltoall_time(traffic)
        # slowest link is a single 20 GB/s edge carrying 20 GB -> 1 s
        assert t == pytest.approx(1.0)

    def test_augmented_pairs_faster(self):
        node = p100_nvlink_node(4)
        traffic = np.zeros((4, 4))
        traffic[0, 1] = 40e9
        assert node.alltoall_time(traffic) == pytest.approx(1.0)
        traffic2 = np.zeros((4, 4))
        traffic2[0, 2] = 40e9
        assert node.alltoall_time(traffic2) == pytest.approx(2.0)

    def test_bad_shape_rejected(self):
        node = p100_nvlink_node(2)
        with pytest.raises(TopologyError):
            node.alltoall_time(np.zeros((4, 4)))

    def test_zero_traffic(self):
        node = p100_nvlink_node(4)
        assert node.alltoall_time(np.zeros((4, 4))) == 0.0


class TestHostTransfers:
    def test_switch_contention(self):
        node = p100_nvlink_node(4)
        # all bytes through switch 0 (GPUs 0 and 1)
        t_contended = node.host_transfer_time(np.array([11e9, 11e9, 0, 0]))
        # spread across both switches
        t_spread = node.host_transfer_time(np.array([11e9, 0, 11e9, 0]))
        assert t_contended == pytest.approx(2.0)
        assert t_spread == pytest.approx(1.0)

    def test_aggregate_bandwidth_matches_paper(self):
        """'accumulated theoretical peak ... ≈ 22 GB/s in experiments'."""
        node = p100_nvlink_node(4)
        total = node.num_switches * node.pcie_switch_bandwidth
        assert total == pytest.approx(22e9)


class TestPcieOnlyNode:
    def test_uniform_links(self):
        node = pcie_only_node(4)
        for a in range(4):
            for b in range(a + 1, 4):
                assert node.link_bandwidth(a, b) == pytest.approx(10e9)

    def test_slower_than_nvlink(self):
        traffic = np.full((4, 4), 1e9)
        np.fill_diagonal(traffic, 0)
        t_nv = p100_nvlink_node(4).alltoall_time(traffic)
        t_pcie = pcie_only_node(4).alltoall_time(traffic)
        assert t_pcie > t_nv
