"""Coordinated shard growth across the multi-GPU cascade and the driver.

Shard growth is decided between the transposition and kernel phases of
an insert cascade — when the incoming per-GPU counts are known exactly
but before shard tasks snapshot slot views.  When any shard's policy
trips, *all* shards grow to a uniform target so the partition hash keeps
addressing evenly-sized shards, each rehash is a device-local D2D pass
logged as a ``"grow rehash"`` transfer, and the whole episode lands in
``CascadeReport.grow_reports`` / obs metrics / measured driver spans.
"""

import numpy as np
import pytest

from repro.core.growth import GrowthPolicy
from repro.errors import ConfigurationError
from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.memory.transfer import MemcpyKind
from repro.obs import runtime as obs
from repro.obs.export import to_perfetto, validate_trace
from repro.pipeline.driver import AsyncCascadeDriver
from repro.workloads.distributions import random_values, unique_keys


def _node():
    return p100_nvlink_node(4)


def _chunks(n, parts, seed):
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    return (
        keys,
        values,
        list(zip(np.array_split(keys, parts), np.array_split(values, parts))),
    )


class TestCoordinatedGrowth:
    def test_four_x_ingest_without_insertion_error(self):
        table = DistributedHashTable(
            _node(), 512, growth=GrowthPolicy(max_load=0.9)
        )
        keys, values, chunks = _chunks(2048, 8, seed=31)
        for ck, cv in chunks:
            table.insert(ck, cv)
        assert len(table) == 2048
        got, found, _ = table.query(keys)
        assert found.all() and (got == values).all()

    def test_shard_capacities_stay_uniform(self):
        table = DistributedHashTable(
            _node(), 512, growth=GrowthPolicy(max_load=0.9)
        )
        _, _, chunks = _chunks(2048, 8, seed=32)
        for ck, cv in chunks:
            table.insert(ck, cv)
        caps = {s.capacity for s in table.shards}
        assert len(caps) == 1, f"shards diverged: {caps}"
        assert caps.pop() > 128
        assert sum(s.grows for s in table.shards) >= table.num_gpus

    def test_grow_reports_and_transfer_records(self):
        table = DistributedHashTable(
            _node(), 512, growth=GrowthPolicy(max_load=0.9)
        )
        _, _, chunks = _chunks(2048, 8, seed=33)
        grow_reports = []
        for ck, cv in chunks:
            report = table.insert(ck, cv)
            grow_reports.extend(report.grow_reports)
            if report.grow_reports:
                assert report.grow_wall_seconds > 0
                assert "grow_reports" in report.to_dict()
        assert grow_reports and all(r.op == "rehash" for r in grow_reports)
        rehash_xfers = [
            r for r in table.transfer_log.records if r.tag == "grow rehash"
        ]
        assert rehash_xfers
        assert all(
            r.kind is MemcpyKind.D2D and r.src_device == r.dst_device
            for r in rehash_xfers
        )

    def test_explicit_grow(self):
        table = DistributedHashTable(_node(), 512)
        keys = unique_keys(300, seed=34)
        table.insert(keys, keys)
        table.grow(2048)
        assert table.total_capacity >= 2048
        assert len({s.capacity for s in table.shards}) == 1
        got, found, _ = table.query(keys)
        assert found.all() and (got == keys).all()

    def test_explicit_shrink_rejected(self):
        table = DistributedHashTable(_node(), 512)
        with pytest.raises(ConfigurationError):
            table.grow(256)


class TestGrowthObservability:
    @pytest.fixture
    def traced(self):
        with obs.session() as (recorder, _metrics):
            yield recorder

    def _ingest(self, table, seed=35):
        _, _, chunks = _chunks(2048, 8, seed=seed)
        for ck, cv in chunks:
            table.insert(ck, cv)

    def test_metrics_count_grows(self, traced):
        table = DistributedHashTable(
            _node(), 512, growth=GrowthPolicy(max_load=0.9)
        )
        self._ingest(table)
        counters = obs.get_metrics().counters
        assert counters.get("cascade.insert.grows", 0) >= table.num_gpus
        assert counters.get("cascade.insert.grow_wall_seconds", 0) > 0
        assert counters.get("kernel.rehash.ops", 0) >= table.num_gpus

    def test_trace_has_shard_growth_span_and_validates(self, traced):
        table = DistributedHashTable(
            _node(), 512, growth=GrowthPolicy(max_load=0.9)
        )
        self._ingest(table)
        growth_spans = [
            s for s in traced.spans if s.name == "shard growth"
        ]
        assert growth_spans
        assert growth_spans[0].category == "lifecycle"
        assert growth_spans[0].attrs["num_gpus"] == 4
        grow_spans = [s for s in traced.spans if s.name == "grow"]
        assert len(grow_spans) >= 4  # every shard grew under the episode
        data = to_perfetto(traced)
        assert validate_trace(data) == []
        names = {ev.get("name") for ev in data["traceEvents"]}
        assert "shard growth" in names and "grow" in names


class TestDriverGrowth:
    def test_mid_stream_growth_is_transparent(self):
        table = DistributedHashTable(
            _node(), 512, growth=GrowthPolicy(max_load=0.9)
        )
        driver = AsyncCascadeDriver(table, num_threads=2, measure=True)
        keys, values, chunks = _chunks(2048, 8, seed=36)
        res = driver.insert_stream(chunks)
        assert res.num_ops == 2048
        assert len(table) == 2048
        got, found, _ = table.query(keys)
        assert found.all() and (got == values).all()

    def test_measured_timeline_includes_grow_span(self):
        table = DistributedHashTable(
            _node(), 512, growth=GrowthPolicy(max_load=0.9)
        )
        driver = AsyncCascadeDriver(table, num_threads=2, measure=True)
        _, _, chunks = _chunks(2048, 8, seed=37)
        res = driver.insert_stream(chunks)
        grow_spans = [
            s for s in res.measured.spans if s.op == "insert grow"
        ]
        assert grow_spans, "no measured span for mid-stream shard growth"
        assert all(s.end > s.start for s in grow_spans)
        assert all(s.shard == -1 for s in grow_spans)
