"""The cascade plan compiler: preplanned buffers, cache reuse, safety.

A :class:`~repro.multigpu.plan.CascadePlan` pre-allocates one batch's
chunk slices, key-only packing planes, reverse permutation scratch, and
in-place routing buffers; the :class:`~repro.multigpu.plan.PlanCache`
reuses it across same-shape waves (the ``AsyncCascadeDriver`` streaming
regime).  Reuse must never change results — the cascades are re-run
through cached plans here and compared against fresh tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.partition import hashed_partition
from repro.memory.layout import pack_pairs
from repro.multigpu.alltoall import transpose_exchange_fast
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.multisplit import multisplit_fast
from repro.multigpu.partition_table import PartitionTable
from repro.multigpu.plan import CascadePlan, PlanCache, chunk_slices
from repro.multigpu.topology import p100_nvlink_node
from repro.workloads import random_values, unique_keys


class TestChunkSlices:
    def test_covers_range_contiguously(self):
        slices = chunk_slices(1000, 3)
        assert slices[0].start == 0 and slices[-1].stop == 1000
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start

    def test_matches_linspace_bounds(self):
        bounds = np.linspace(0, 10, 5).astype(np.int64)
        for sl, lo, hi in zip(chunk_slices(10, 4), bounds, bounds[1:]):
            assert (sl.start, sl.stop) == (lo, hi)

    def test_more_gpus_than_items(self):
        slices = chunk_slices(2, 4)
        assert len(slices) == 4
        assert sum(sl.stop - sl.start for sl in slices) == 2


class TestCascadePlan:
    def test_insert_plan_has_no_reverse_leg(self):
        plan = CascadePlan.compile("insert", 100, 4)
        assert plan.chunks == chunk_slices(100, 4)
        assert plan.zeros is None and plan.perm is None
        assert plan.gather_out is None
        assert not plan.reversible

    @pytest.mark.parametrize("op", ["query", "erase"])
    def test_reversible_plan_buffers(self, op):
        n, m = 100, 4
        plan = CascadePlan.compile(op, n, m)
        assert plan.reversible
        assert plan.perm.shape == (n,) and plan.perm.dtype == np.int64
        for sl, zeros, gather in zip(plan.chunks, plan.zeros, plan.gather_out):
            size = sl.stop - sl.start
            assert zeros.shape == (size,) and zeros.dtype == np.uint32
            assert not zeros.any()
            assert gather.shape == (size,) and gather.dtype == np.int64

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            CascadePlan.compile("update", 10, 2)
        with pytest.raises(ConfigurationError):
            CascadePlan.compile("insert", -1, 2)
        with pytest.raises(ConfigurationError):
            CascadePlan.compile("insert", 10, 0)


class TestPlanCache:
    def test_miss_then_hit_returns_same_plan(self):
        cache = PlanCache()
        a = cache.get("query", 64, 4)
        b = cache.get("query", 64, 4)
        assert a is b
        assert (cache.misses, cache.hits) == (1, 1)

    def test_distinct_shapes_miss(self):
        cache = PlanCache()
        assert cache.get("query", 64, 4) is not cache.get("query", 65, 4)
        assert cache.get("query", 64, 4) is not cache.get("insert", 64, 4)

    def test_gpu_count_change_recompiles(self):
        cache = PlanCache()
        a = cache.get("query", 64, 4)
        b = cache.get("query", 64, 2)
        assert a is not b and b.num_gpus == 2

    def test_lru_eviction_bounds_memory(self):
        cache = PlanCache()
        first = cache.get("insert", 1, 2)
        for n in range(2, 2 + cache.maxsize):
            cache.get("insert", n, 2)
        assert len(cache) == cache.maxsize
        assert cache.get("insert", 1, 2) is not first  # evicted → fresh

    def test_clear(self):
        cache = PlanCache()
        cache.get("insert", 10, 2)
        cache.clear()
        assert len(cache) == 0


class TestPlanReuseCorrectness:
    def test_repeated_waves_hit_cache_and_stay_correct(self):
        """Three same-shape query waves: the second and third run on the
        first wave's plan buffers and must return identical answers."""
        n = 900
        keys = unique_keys(n, seed=71)
        values = random_values(n, seed=72)
        table = DistributedHashTable.for_workload(
            p100_nvlink_node(4), keys, 0.8, group_size=4
        )
        try:
            table.insert(keys, values, source="device")
            answers = [
                table.query(keys, source="device")[:2] for _ in range(3)
            ]
            for vals, found in answers:
                assert (vals == answers[0][0]).all()
                assert found.all()
            assert (answers[0][0] == values).all()
            assert table._plans.hits >= 2  # waves 2 and 3 reused the plan
        finally:
            table.free()

    def test_mixed_ops_and_sizes_interleave_safely(self):
        n = 600
        keys = unique_keys(n, seed=73)
        values = random_values(n, seed=74)
        table = DistributedHashTable.for_workload(
            p100_nvlink_node(4), keys, 0.8, group_size=4
        )
        try:
            table.insert(keys, values, source="device")
            erased, _ = table.erase(keys[: n // 3])
            assert erased.all()
            vals, found, _ = table.query(keys, source="device")
            assert not found[: n // 3].any() and found[n // 3 :].all()
            assert (vals[n // 3 :] == values[n // 3 :]).all()
            # a differently-sized wave compiles its own plan
            vals2, found2, _ = table.query(keys[: n // 2], source="device")
            assert (vals2 == vals[: n // 2]).all()
            assert (found2 == found[: n // 2]).all()
        finally:
            table.free()


class TestGatherOutContract:
    def _exchange_inputs(self, m=3, per_gpu=120):
        part = hashed_partition(m)
        splits = [
            multisplit_fast(
                pack_pairs(
                    unique_keys(per_gpu, seed=81 + gpu * 7),
                    random_values(per_gpu, seed=91 + gpu),
                ),
                part,
            )
            for gpu in range(m)
        ]
        table = PartitionTable(np.stack([ms.counts for ms in splits]))
        return (
            [ms.pairs for ms in splits],
            [ms.offsets for ms in splits],
            table,
            p100_nvlink_node(m),
        )

    def test_gather_out_filled_in_place(self):
        pairs, offsets, table, node = self._exchange_inputs()
        baseline = transpose_exchange_fast(pairs, offsets, table, node)
        bufs = [
            np.zeros(g.shape[0], dtype=np.int64)
            for g in baseline.routing.reverse_gather
        ]
        fused = transpose_exchange_fast(
            pairs, offsets, table, node, gather_out=bufs
        )
        for buf, ref, mine in zip(
            bufs, baseline.routing.reverse_gather, fused.routing.reverse_gather
        ):
            assert mine is buf  # aliased, not copied
            assert (mine == ref).all()

    def test_wrong_buffer_count_raises(self):
        pairs, offsets, table, node = self._exchange_inputs()
        with pytest.raises(ConfigurationError, match="gather_out"):
            transpose_exchange_fast(
                pairs, offsets, table, node,
                gather_out=[np.zeros(1, dtype=np.int64)],
            )

    def test_wrong_buffer_size_raises(self):
        pairs, offsets, table, node = self._exchange_inputs()
        bad = [np.zeros(1, dtype=np.int64) for _ in range(3)]
        with pytest.raises(ConfigurationError, match="slots for"):
            transpose_exchange_fast(
                pairs, offsets, table, node, gather_out=bad
            )
