"""Property tests: the hierarchical (cluster) topology layer.

Three guarantees, per the scale-out design:

* a one-node cluster is *bit-identical* to the flat node it wraps —
  outputs, table state, transfer logs, and every charged byte/second —
  across insert/query/erase workloads with growth and tombstone churn;
* the fused two-level multisplit agrees with the composed single-level
  reference (per-GPU fields unchanged, node counts/offsets the sums of
  the member-GPU spans);
* the NIC charge model matches hand-computed traffic matrices, and the
  unified ``topology=`` factory/shim vocabulary resolves and rejects
  specs the documented way.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.growth import GrowthPolicy
from repro.errors import ConfigurationError, TopologyError
from repro.hashing.partition import hashed_partition
from repro.memory.layout import pack_pairs
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.multisplit import (
    multisplit_fast,
    multisplit_two_level,
)
from repro.multigpu.topology import (
    DEFAULT_NIC_BANDWIDTH,
    ClusterTopology,
    NodeTopology,
    Topology,
    TopologySpec,
    p100_nvlink_node,
    pcie_only_node,
    topology,
)
from repro.options import reset_deprecation_warnings
from repro.workloads.distributions import random_values, unique_keys

WALL_KEYS = (
    "kernel_wall_seconds",
    "distribution_wall_seconds",
    "grow_wall_seconds",
    "kernel_spans",
)


def report_fingerprint(report):
    """Everything deterministic in a CascadeReport (wall clocks dropped)."""
    d = report.to_dict()
    for key in WALL_KEYS:
        d.pop(key, None)
    return d


def run_workload(topo, n, seed, *, churn):
    """Insert (with growth) + optional erase/reinsert churn + query."""
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    table = DistributedHashTable(
        max(16, n // 2),
        topology=topo,
        growth=GrowthPolicy(max_load=0.8),
    )
    try:
        reports = [table.insert(keys, values, source="host")]
        if churn:
            erased, erep = table.erase(keys[: n // 3])
            reports.append(erep)
            # reinsert over the tombstones
            reports.append(
                table.insert(
                    keys[: n // 3], values[: n // 3] + 1, source="device"
                )
            )
        got, found, qrep = table.query(keys, source="host")
        reports.append(qrep)
        ks, vs = table.export()
        order = np.argsort(ks, kind="stable")
        state = (len(table), ks[order].tobytes(), vs[order].tobytes())
        outputs = (got.tobytes(), found.tobytes())
        if churn:
            outputs += (erased.tobytes(),)
        log = tuple(
            (r.kind.name, r.src_device, r.dst_device, r.nbytes, r.tag)
            for r in table.transfer_log.records
        )
        grows = tuple(s.grows for s in table.shards)
    finally:
        table.free()
    return {
        "state": state,
        "outputs": outputs,
        "reports": [report_fingerprint(r) for r in reports],
        "log": log,
        "grows": grows,
    }


class TestOneNodeClusterBitIdentity:
    """cluster(1x4) == flat m=4, everything included, property-tested."""

    @given(
        n=st.integers(min_value=8, max_value=400),
        seed=st.integers(min_value=0, max_value=10_000),
        churn=st.booleans(),
    )
    @examples(25)
    def test_flat_vs_one_node_cluster(self, n, seed, churn):
        flat = run_workload(p100_nvlink_node(4), n, seed, churn=churn)
        clustered = run_workload(topology("cluster:1x4"), n, seed, churn=churn)
        assert clustered == flat

    @given(
        m=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @examples(10)
    def test_any_width_one_node_cluster(self, m, seed):
        flat = run_workload(p100_nvlink_node(m), 120, seed, churn=True)
        spec = TopologySpec(preset="p100", gpus_per_node=m, force_cluster=True)
        clustered = run_workload(spec.build(), 120, seed, churn=True)
        assert clustered == flat

    def test_one_node_cluster_charges_nothing_to_the_nic(self):
        result = run_workload(topology("cluster:1x4"), 300, 7, churn=True)
        for rep in result["reports"]:
            assert rep["alltoall_inter_bytes"] == 0
            assert rep["alltoall_inter_seconds"] == 0.0
            assert rep["alltoall_intra_bytes"] == rep["alltoall_bytes"]

    def test_two_node_cluster_same_state_nic_charged(self):
        """2x2 reaches the identical table state (node-major global ids
        keep the shard assignment) but routes bytes over the NIC."""
        flat = run_workload(p100_nvlink_node(4), 300, 7, churn=True)
        two = run_workload(topology("cluster:2x2"), 300, 7, churn=True)
        assert two["state"] == flat["state"]
        assert two["outputs"] == flat["outputs"]
        insert_rep = two["reports"][0]
        assert insert_rep["num_nodes"] == 2
        assert insert_rep["alltoall_inter_bytes"] > 0
        assert (
            insert_rep["alltoall_intra_bytes"]
            + insert_rep["alltoall_inter_bytes"]
            == insert_rep["alltoall_bytes"]
        )


class TestTwoLevelMultisplit:
    """Fused two-level split vs the composed single-level reference."""

    @given(
        n=st.integers(min_value=0, max_value=400),
        shape=st.sampled_from([(1, 4), (2, 2), (2, 4), (4, 2), (4, 4)]),
        group_size=st.sampled_from([1, 4, 32]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @examples(50)
    def test_counts_offsets_match_composed_reference(
        self, n, shape, group_size, seed
    ):
        num_nodes, gpus = shape
        m = num_nodes * gpus
        if n:
            keys = unique_keys(n, seed=seed)
            values = random_values(n, seed=seed + 1)
        else:
            keys = np.array([], dtype=np.uint32)
            values = np.array([], dtype=np.uint32)
        pairs = pack_pairs(keys, values)
        partition = hashed_partition(m)
        spans = [(i * gpus, (i + 1) * gpus) for i in range(num_nodes)]

        flat = multisplit_fast(pairs, partition, group_size=group_size)
        two = multisplit_two_level(
            pairs, partition, spans, group_size=group_size
        )

        # GPU level: bit-identical to the flat fused split
        assert (two.pairs == flat.pairs).all()
        assert (two.counts == flat.counts).all()
        assert (two.offsets == flat.offsets).all()
        assert (two.source_index == flat.source_index).all()
        assert two.report.load_sectors == flat.report.load_sectors
        assert two.report.store_sectors == flat.report.store_sectors

        # node level: sums of the member-GPU spans, exclusive-scanned
        expected_counts = np.array(
            [int(flat.counts[lo:hi].sum()) for lo, hi in spans], dtype=np.int64
        )
        assert (two.node_counts == expected_counts).all()
        assert (
            two.node_offsets
            == np.concatenate(([0], np.cumsum(expected_counts)[:-1]))
        ).all()
        assert two.num_nodes == num_nodes

        # node_part(k) is the contiguous run covering that node's GPUs
        for k, (lo, hi) in enumerate(spans):
            part = two.node_part(k)
            start = int(flat.offsets[lo])
            assert (part == flat.pairs[start : start + expected_counts[k]]).all()

    def test_bad_spans_rejected(self):
        pairs = pack_pairs(unique_keys(16, seed=1), random_values(16, seed=2))
        partition = hashed_partition(4)
        for spans in ([(0, 2), (3, 4)], [(0, 2)], [(2, 4), (0, 2)], []):
            with pytest.raises((ConfigurationError, TopologyError)):
                multisplit_two_level(pairs, partition, spans)


class TestNicCharging:
    """traffic_breakdown vs hand-computed matrices."""

    def make_cluster(self, num_nodes=2, gpus=2, **overrides):
        return topology(f"cluster:{num_nodes}x{gpus}", **overrides)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shape=st.sampled_from([(2, 2), (2, 4), (3, 2), (4, 4)]),
    )
    @examples(40)
    def test_breakdown_bytes_match_hand_sums(self, seed, shape):
        num_nodes, gpus = shape
        topo = self.make_cluster(num_nodes, gpus)
        m = topo.num_devices
        rng = np.random.default_rng(seed)
        traffic = rng.integers(0, 1 << 16, size=(m, m)).astype(np.int64)
        np.fill_diagonal(traffic, 0)

        b = topo.traffic_breakdown(traffic)
        intra = 0
        inter = 0
        for src in range(m):
            for dst in range(m):
                if src == dst:
                    continue
                if topo.node_of(src) == topo.node_of(dst):
                    intra += int(traffic[src, dst])
                else:
                    inter += int(traffic[src, dst])
        assert b.intra_bytes == intra
        assert b.inter_bytes == inter
        assert b.total_bytes == intra + inter

        # node matrix agrees with the same hand partition
        node_traffic = topo.node_traffic_matrix(traffic)
        assert int(node_traffic.sum()) == inter

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @examples(40)
    def test_inter_seconds_match_hand_formula(self, seed):
        topo = self.make_cluster(2, 2, nic_bandwidth=5e9, nic_latency=2e-6)
        m = topo.num_devices
        rng = np.random.default_rng(seed)
        traffic = rng.integers(1, 1 << 20, size=(m, m)).astype(np.int64)
        np.fill_diagonal(traffic, 0)

        b = topo.traffic_breakdown(traffic)
        node_traffic = topo.node_traffic_matrix(traffic)
        egress = node_traffic.sum(axis=1)
        ingress = node_traffic.sum(axis=0)
        bottleneck = max(
            max(float(egress[k]), float(ingress[k]))
            for k in range(topo.num_nodes)
        )
        assert b.inter_seconds == pytest.approx(2e-6 + bottleneck / 5e9)
        # the two levels overlap: the breakdown reports the slower one
        assert b.seconds == max(b.intra_seconds, b.inter_seconds)
        assert topo.alltoall_time(traffic) == b.seconds

    def test_intra_level_is_the_slowest_member_node(self):
        topo = self.make_cluster(2, 2)
        m = topo.num_devices
        traffic = np.zeros((m, m), dtype=np.int64)
        traffic[0, 1] = 4096  # node 0 internal
        traffic[2, 3] = 1 << 20  # node 1 internal, much heavier
        b = topo.traffic_breakdown(traffic)
        assert b.inter_bytes == 0 and b.inter_seconds == 0.0
        expected = max(
            node.alltoall_time(traffic[lo:hi, lo:hi])
            for node, (lo, hi) in zip(topo.nodes, topo.node_spans())
        )
        assert b.intra_seconds == pytest.approx(expected)

    def test_zero_traffic_has_no_latency_charge(self):
        topo = self.make_cluster(2, 2)
        b = topo.traffic_breakdown(np.zeros((4, 4), dtype=np.int64))
        assert b.inter_seconds == 0.0 and b.intra_seconds == 0.0

    def test_flat_breakdown_matches_alltoall_time(self):
        node = p100_nvlink_node(4)
        traffic = np.full((4, 4), 1 << 14, dtype=np.int64)
        np.fill_diagonal(traffic, 0)
        b = node.traffic_breakdown(traffic)
        assert b.inter_bytes == 0
        assert b.seconds == node.alltoall_time(traffic)
        assert b.intra_bytes == int(traffic.sum())


class TestTopologyFactory:
    """The unified ``topology=`` spec grammar and option shims."""

    def test_spec_strings(self):
        assert isinstance(topology("p100"), NodeTopology)
        assert topology("p100:8").num_devices == 8
        assert topology("pcie:2").num_devices == 2
        assert topology("dgx1v").num_devices == 8
        cluster = topology("cluster:2x4")
        assert isinstance(cluster, ClusterTopology)
        assert cluster.num_nodes == 2 and cluster.num_devices == 8
        one = topology("cluster:1x4")
        assert isinstance(one, ClusterTopology)  # explicit cluster stays one
        assert isinstance(topology(None), NodeTopology)

    def test_spec_dataclass_and_overrides(self):
        spec = TopologySpec(preset="pcie", gpus_per_node=2, num_nodes=3)
        topo = topology(spec)
        assert topo.num_nodes == 3 and topo.num_devices == 6
        fat = topology("cluster:2x2", nic_bandwidth=99e9)
        assert fat.nic_bandwidth == 99e9
        assert topology("cluster:2x2").nic_bandwidth == DEFAULT_NIC_BANDWIDTH

    def test_bad_specs_rejected(self):
        for bad in ("v100", "cluster:2", "cluster:ax4", "p100:x", "", "p100:0"):
            with pytest.raises(ConfigurationError):
                topology(bad)
        with pytest.raises(ConfigurationError):
            topology(42)

    def test_instance_passthrough_rejects_overrides(self):
        node = pcie_only_node(2)
        assert topology(node) is node
        with pytest.raises(ConfigurationError):
            topology(node, nic_bandwidth=1e9)

    def test_protocol_runtime_checkable(self):
        assert isinstance(p100_nvlink_node(4), Topology)
        assert isinstance(topology("cluster:2x2"), Topology)

    def test_table_topology_keyword(self):
        table = DistributedHashTable(128, topology="cluster:2x2")
        try:
            assert table.topology.num_nodes == 2
            assert table.num_gpus == 4
        finally:
            table.free()

    def test_table_positional_topology_warns_once(self):
        reset_deprecation_warnings()
        node = p100_nvlink_node(2)
        with pytest.warns(DeprecationWarning, match="positionally"):
            table = DistributedHashTable(node, 128)
        assert table.total_capacity >= 128 and table.num_gpus == 2
        table.free()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second use must stay silent
            table = DistributedHashTable(p100_nvlink_node(2), 128)
            table.free()
        reset_deprecation_warnings()

    def test_table_conflicting_topologies_rejected(self):
        reset_deprecation_warnings()
        node = p100_nvlink_node(2)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                DistributedHashTable(node, 128, topology="p100:4")
        with pytest.raises(ConfigurationError):
            DistributedHashTable(topology="p100:2")  # capacity still required
        reset_deprecation_warnings()

    def test_driver_builds_and_owns_its_table(self):
        from repro.pipeline.driver import AsyncCascadeDriver

        driver = AsyncCascadeDriver(
            total_capacity=256, topology="cluster:2x2"
        )
        assert driver.table.topology.num_nodes == 2
        driver.close()
        with pytest.raises(ConfigurationError):
            AsyncCascadeDriver()  # neither table nor capacity
        table = DistributedHashTable(128, topology="p100:2")
        try:
            with pytest.raises(ConfigurationError):
                AsyncCascadeDriver(table, topology="p100:2")
            with pytest.raises(ConfigurationError):
                AsyncCascadeDriver(table, total_capacity=128)
        finally:
            table.free()
