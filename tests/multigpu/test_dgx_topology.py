"""Tests for the DGX-1V extension topology and multi-hop routing."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.multigpu.topology import dgx1v_node, p100_nvlink_node


@pytest.fixture(scope="module")
def dgx():
    return dgx1v_node()


class TestHybridCubeMesh:
    def test_eight_gpus_six_ports_each(self, dgx):
        assert dgx.num_devices == 8
        for g in range(8):
            assert sum(1 for _ in dgx.nvlink.edges(g)) == 6

    def test_not_fully_connected(self, dgx):
        """The defining difference from the paper's 4-GPU mesh."""
        assert not dgx.nvlink.has_edge(0, 5)
        assert not dgx.nvlink.has_edge(0, 6)
        assert not dgx.nvlink.has_edge(1, 4)

    def test_double_links(self, dgx):
        assert dgx.link_bandwidth(0, 3) == pytest.approx(50e9)
        assert dgx.link_bandwidth(0, 4) == pytest.approx(50e9)
        assert dgx.link_bandwidth(0, 1) == pytest.approx(25e9)

    def test_four_pcie_switches(self, dgx):
        assert dgx.num_switches == 4


class TestRouting:
    def test_direct_route(self, dgx):
        assert dgx.route(0, 3) == [0, 3]

    def test_two_hop_route_for_diagonals(self, dgx):
        path = dgx.route(0, 5)
        assert len(path) == 3
        assert path[0] == 0 and path[-1] == 5
        # every hop exists
        for a, b in zip(path, path[1:]):
            assert dgx.nvlink.has_edge(a, b)

    def test_route_prefers_fat_bottleneck(self, dgx):
        """Among equal-hop paths the chosen one maximizes the narrowest
        link."""
        path = dgx.route(0, 5)
        bottleneck = min(dgx.link_bandwidth(a, b) for a, b in zip(path, path[1:]))
        assert bottleneck >= 25e9

    def test_self_route_rejected(self, dgx):
        with pytest.raises(TopologyError):
            dgx.route(2, 2)

    def test_p100_mesh_always_single_hop(self):
        node = p100_nvlink_node(4)
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert node.route(a, b) == [a, b]


class TestAllToAllWithRelay:
    def test_relayed_traffic_loads_intermediate_links(self, dgx):
        """0→5 traffic must occupy two links, so it finishes later than
        the same volume on a direct pair."""
        direct = np.zeros((8, 8))
        direct[0, 4] = 50e9
        relayed = np.zeros((8, 8))
        relayed[0, 5] = 50e9
        assert dgx.alltoall_time(relayed) >= dgx.alltoall_time(direct)

    def test_shared_link_contention_accumulates(self, dgx):
        """Two messages forced over one link take twice as long."""
        single = np.zeros((8, 8))
        single[0, 1] = 25e9
        t1 = dgx.alltoall_time(single)
        double = np.zeros((8, 8))
        double[0, 1] = 25e9
        double[2, 1] = 0  # keep a second message on the same (0,1) link:
        # route(3, 1) = [3, ...]? use another sender whose route crosses (0,1)
        # simpler: double the direct volume
        double[0, 1] = 50e9
        assert dgx.alltoall_time(double) == pytest.approx(2 * t1)

    def test_uniform_alltoall_finishes(self, dgx):
        traffic = np.full((8, 8), 1e9)
        np.fill_diagonal(traffic, 0)
        t = dgx.alltoall_time(traffic)
        assert 0 < t < 1.0

    def test_distributed_table_on_dgx(self):
        """The full cascade machinery runs unchanged on the 8-GPU node."""
        from repro.multigpu.distributed_table import DistributedHashTable
        from repro.workloads.distributions import unique_keys

        node = dgx1v_node()
        keys = unique_keys(4000, seed=1)
        t = DistributedHashTable.for_workload(node, keys, 0.9)
        t.insert(keys, keys)
        assert len(t) == 4000
        got, found, _ = t.query(keys)
        assert found.all() and (got == keys).all()
        assert len(t.shards) == 8
