"""Tests for the distributed multi-GPU hash table."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.partition import modulo_partition
from repro.memory.transfer import MemcpyKind
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.workloads.distributions import random_values, unique_keys, zipf_keys


@pytest.fixture(params=[1, 2, 3, 4])
def node(request):
    return p100_nvlink_node(request.param)


class TestInsertQuery:
    def test_roundtrip_all_gpu_counts(self, node):
        n = 4000
        t = DistributedHashTable.for_load_factor(node, n, 0.9, group_size=4)
        keys = unique_keys(n, seed=1)
        values = random_values(n, seed=2)
        report = t.insert(keys, values, source="host")
        assert len(t) == n
        got, found, _ = t.query(keys, source="host")
        assert found.all() and (got == values).all()

    def test_results_in_input_order(self):
        """The reverse transposition must restore submission order."""
        node = p100_nvlink_node(4)
        n = 2000
        t = DistributedHashTable.for_load_factor(node, n, 0.8)
        keys = unique_keys(n, seed=3)
        values = np.arange(n, dtype=np.uint32)  # value = submission index
        t.insert(keys, values)
        got, found, _ = t.query(keys)
        assert found.all()
        assert (got == values).all()

    def test_absent_keys_reported(self):
        node = p100_nvlink_node(4)
        n = 1000
        t = DistributedHashTable.for_load_factor(node, n, 0.8)
        keys = unique_keys(n, seed=4)
        t.insert(keys, keys)
        pool = unique_keys(3 * n, seed=5)
        absent = pool[~np.isin(pool, keys)][:200]
        got, found, _ = t.query(absent, default=42)
        assert not found.any() and (got == 42).all()

    def test_mixed_present_absent_interleaved(self):
        node = p100_nvlink_node(2)
        keys = unique_keys(500, seed=6)
        t = DistributedHashTable.for_load_factor(node, 500, 0.8)
        t.insert(keys, keys)
        pool = unique_keys(2000, seed=7)
        absent = pool[~np.isin(pool, keys)][:500]
        probe = np.empty(1000, dtype=np.uint32)
        probe[0::2] = keys
        probe[1::2] = absent
        _, found, _ = t.query(probe)
        assert found[0::2].all() and not found[1::2].any()

    def test_every_key_on_its_partition_gpu(self):
        node = p100_nvlink_node(4)
        t = DistributedHashTable.for_load_factor(node, 2000, 0.9)
        keys = unique_keys(2000, seed=8)
        t.insert(keys, keys)
        for gpu, shard in enumerate(t.shards):
            sk, _ = shard.export()
            assert (t.partition(sk) == gpu).all()

    def test_zipf_duplicates_fold_into_updates(self):
        # target load 0.7: with only ~300 unique keys across 4 shards the
        # partition imbalance needs headroom (at paper scale it vanishes;
        # see CascadeReport.load_imbalance)
        node = p100_nvlink_node(4)
        keys = zipf_keys(4000, s=1.3, universe=500, seed=9)
        uniq = int(np.unique(keys).shape[0])
        t = DistributedHashTable.for_load_factor(node, uniq, 0.7)
        t.insert(keys, np.arange(4000, dtype=np.uint32))
        assert len(t) == uniq

    def test_device_source_skips_pcie(self):
        node = p100_nvlink_node(4)
        keys = unique_keys(1000, seed=10)
        t = DistributedHashTable.for_load_factor(node, 1000, 0.9)
        rep_dev = t.insert(keys[:500], keys[:500], source="device")
        assert rep_dev.h2d_bytes == 0
        rep_host = t.insert(keys[500:], keys[500:], source="host")
        assert rep_host.h2d_bytes == 500 * 8

    def test_invalid_source(self):
        node = p100_nvlink_node(2)
        t = DistributedHashTable(node, 100)
        with pytest.raises(ConfigurationError):
            t.insert(np.array([1], dtype=np.uint32), np.array([1], dtype=np.uint32),
                     source="quantum")


class TestReports:
    def test_cascade_report_phases(self):
        node = p100_nvlink_node(4)
        n = 2000
        t = DistributedHashTable.for_load_factor(node, n, 0.9)
        keys = unique_keys(n, seed=11)
        rep = t.insert(keys, keys, source="host")
        assert rep.h2d_bytes == n * 8
        assert len(rep.multisplit_reports) == 4
        assert rep.partition_table is not None
        assert rep.alltoall_bytes == rep.partition_table.offdiagonal_bytes()
        assert len(rep.kernel_reports) == 4
        assert rep.load_imbalance < 1.3

    def test_query_report_includes_reverse(self):
        node = p100_nvlink_node(4)
        n = 2000
        t = DistributedHashTable.for_load_factor(node, n, 0.9)
        keys = unique_keys(n, seed=12)
        t.insert(keys, keys, source="host")
        _, _, rep = t.query(keys, source="host")
        assert rep.reverse_bytes > 0
        assert rep.d2h_bytes == n * 8
        # query ships 4-byte keys up
        assert rep.h2d_bytes == n * 4

    def test_merged_kernel_report(self):
        node = p100_nvlink_node(2)
        t = DistributedHashTable.for_load_factor(node, 1000, 0.9)
        keys = unique_keys(1000, seed=13)
        rep = t.insert(keys, keys)
        merged = rep.merged_kernel_report()
        assert merged.num_ops == 1000


class TestDistributedErase:
    def test_erase_cascade(self):
        node = p100_nvlink_node(4)
        keys = unique_keys(2000, seed=20)
        t = DistributedHashTable.for_workload(node, keys, 0.9)
        t.insert(keys, keys)
        erased, report = t.erase(keys[:500])
        assert erased.all()
        assert len(t) == 1500
        assert report.op == "erase"
        assert len(report.kernel_reports) == 4
        _, found, _ = t.query(keys[:500])
        assert not found.any()
        _, found, _ = t.query(keys[500:])
        assert found.all()

    def test_erase_absent_keys_flagged(self):
        node = p100_nvlink_node(2)
        keys = unique_keys(500, seed=21)
        t = DistributedHashTable.for_workload(node, keys, 0.8)
        t.insert(keys, keys)
        pool = unique_keys(2000, seed=22)
        absent = pool[~np.isin(pool, keys)][:100]
        probe = np.concatenate([keys[:100], absent])
        erased, _ = t.erase(probe)
        assert erased[:100].all() and not erased[100:].any()

    def test_erase_host_source_logs_transfers(self):
        """erase(source="host") must log H2D records matching its
        h2d accounting and report reverse traffic, like insert/query."""
        node = p100_nvlink_node(4)
        keys = unique_keys(2000, seed=24)
        t = DistributedHashTable.for_workload(node, keys, 0.9)
        t.insert(keys, keys, source="device")
        t.transfer_log.clear()
        erased, report = t.erase(keys[:1000], source="host")
        assert erased.all()
        assert report.h2d_bytes == 1000 * 4
        h2d_records = [
            r for r in t.transfer_log.records if r.kind is MemcpyKind.H2D
        ]
        assert sum(r.nbytes for r in h2d_records) == report.h2d_bytes
        assert all(r.tag == "erase keys" for r in h2d_records)
        # reverse traffic is now accounted exactly like the query cascade
        assert report.reverse_bytes > 0
        reverse_p2p = [
            r
            for r in t.transfer_log.records
            if r.kind is MemcpyKind.P2P and r.tag.startswith("reverse")
        ]
        assert sum(r.nbytes for r in reverse_p2p) == report.reverse_bytes

    def test_erase_device_source_logs_nothing_host_side(self):
        node = p100_nvlink_node(2)
        keys = unique_keys(500, seed=25)
        t = DistributedHashTable.for_workload(node, keys, 0.9)
        t.insert(keys, keys, source="device")
        t.transfer_log.clear()
        _, report = t.erase(keys[:100])  # default source="device"
        assert report.h2d_bytes == 0
        assert not any(
            r.kind is MemcpyKind.H2D for r in t.transfer_log.records
        )

    def test_query_reverse_bytes_matches_traffic_matrix(self):
        node = p100_nvlink_node(4)
        keys = unique_keys(2000, seed=26)
        t = DistributedHashTable.for_workload(node, keys, 0.9)
        t.insert(keys, keys, source="device")
        t.transfer_log.clear()
        _, _, report = t.query(keys, source="host")
        reverse_p2p = [
            r
            for r in t.transfer_log.records
            if r.kind is MemcpyKind.P2P and r.tag.startswith("reverse")
        ]
        assert report.reverse_bytes == sum(r.nbytes for r in reverse_p2p)

    def test_erase_then_reinsert(self):
        node = p100_nvlink_node(3)
        keys = unique_keys(600, seed=23)
        t = DistributedHashTable.for_workload(node, keys, 0.8)
        t.insert(keys, keys)
        t.erase(keys[:200])
        t.insert(keys[:200], (keys[:200] + 1).astype(np.uint32))
        got, found, _ = t.query(keys[:200])
        assert found.all() and (got == keys[:200] + 1).all()
        assert len(t) == 600


class TestConfiguration:
    def test_capacity_split_across_shards(self):
        node = p100_nvlink_node(4)
        t = DistributedHashTable(node, 1000)
        assert t.total_capacity == 4 * 250
        assert all(s.capacity == 250 for s in t.shards)

    def test_custom_partition(self):
        node = p100_nvlink_node(4)
        t = DistributedHashTable(node, 400, partition=modulo_partition(4))
        keys = np.arange(100, dtype=np.uint32)
        t.insert(keys, keys, source="device")
        # key k lives on GPU k mod 4
        for gpu, shard in enumerate(t.shards):
            sk, _ = shard.export()
            assert (sk % 4 == gpu).all()

    def test_partition_gpu_mismatch_rejected(self):
        node = p100_nvlink_node(4)
        with pytest.raises(ConfigurationError):
            DistributedHashTable(node, 100, partition=modulo_partition(2))

    def test_export_collects_all_shards(self):
        node = p100_nvlink_node(3)
        keys = unique_keys(600, seed=14)
        t = DistributedHashTable.for_load_factor(node, 600, 0.8)
        t.insert(keys, keys)
        k, v = t.export()
        assert np.sort(k).tolist() == np.sort(keys).tolist()

    def test_vram_accounting(self):
        node = p100_nvlink_node(2)
        t = DistributedHashTable(node, 2000)
        assert node.devices[0].allocated_bytes == 1000 * 8
        t.free()
        assert node.devices[0].allocated_bytes == 0

    def test_staging_buffers_transient(self):
        """Fig. 4's double buffers reserve VRAM during a cascade and
        release it afterwards."""
        node = p100_nvlink_node(2)
        keys = unique_keys(1000, seed=30)
        t = DistributedHashTable.for_workload(node, keys, 0.8)
        before = node.devices[0].allocated_bytes
        t.insert(keys, keys)
        assert node.devices[0].allocated_bytes == before  # released
        # but the peak recorded the staging footprint (2x chunk pairs)
        assert node.devices[0].peak_allocated_bytes >= before + 2 * 500 * 8

    def test_staging_released_when_query_raises(self):
        """query()/erase() must release staging buffers on exception
        (the try/finally insert() always had)."""
        node = p100_nvlink_node(2)
        keys = unique_keys(1000, seed=32)
        t = DistributedHashTable.for_workload(node, keys, 0.8)
        t.insert(keys, keys)
        baseline = node.devices[0].allocated_bytes

        def boom(tasks):
            raise RuntimeError("engine crashed")

        t.engine.run = boom
        with pytest.raises(RuntimeError):
            t.query(keys)
        assert node.devices[0].allocated_bytes == baseline
        with pytest.raises(RuntimeError):
            t.erase(keys[:10])
        assert node.devices[0].allocated_bytes == baseline

    def test_oversized_batch_exhausts_vram(self):
        """A batch whose double buffers exceed the card must fail the
        same way the real node would."""
        from repro.errors import AllocationError
        from repro.multigpu.topology import NodeTopology
        from repro.simt.device import Device, GPUSpec
        import networkx as nx

        tiny = GPUSpec(name="tiny", vram_bytes=64 * 1024, mem_bandwidth=1e9)
        devices = [Device(i, tiny) for i in range(2)]
        graph = nx.MultiGraph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 1, bandwidth=20e9)
        node = NodeTopology(
            devices=devices,
            nvlink=graph,
            pcie_switch_of={0: 0, 1: 0},
            pcie_switch_bandwidth=11e9,
        )
        t = DistributedHashTable(node, 2000)  # 8 kB of shards per GPU
        big = unique_keys(16000, seed=31)  # 64 kB of staging per GPU
        with pytest.raises(AllocationError):
            t.insert(big, big)
