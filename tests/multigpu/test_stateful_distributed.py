"""Model-based testing of the distributed table against a dict oracle.

Same contract as the single-GPU stateful machine, but every operation
crosses the full multisplit → transposition → kernel cascade, so this
exercises partitioning, routing, and result re-ordering under random
op interleavings.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node

KEYS = st.integers(min_value=1, max_value=150)
VALUES = st.integers(min_value=0, max_value=10_000)


class DistributedMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        node = p100_nvlink_node(3)
        # capacity far above the universe so shard imbalance cannot fail
        self.table = DistributedHashTable(node, 1536, group_size=4)
        self.model: dict[int, int] = {}

    @rule(keys=st.lists(KEYS, min_size=1, max_size=10), value=VALUES)
    def bulk_insert(self, keys, value):
        arr = np.array(keys, dtype=np.uint32)
        vals = (np.arange(len(keys)) + value).astype(np.uint32)
        self.table.insert(arr, vals)
        for k, v in zip(keys, vals):
            self.model[k] = int(v)

    @rule(keys=st.lists(KEYS, min_size=1, max_size=6))
    def erase(self, keys):
        arr = np.array(keys, dtype=np.uint32)
        erased, _ = self.table.erase(arr)
        # per-request flag must match membership at the batch's start;
        # duplicates in one batch all report success (they share the
        # stored pair and erase is a single barrier-delimited phase)
        for i, k in enumerate(keys):
            assert bool(erased[i]) == (k in self.model)
        for k in keys:
            self.model.pop(k, None)

    @rule(keys=st.lists(KEYS, min_size=1, max_size=10))
    def query(self, keys):
        arr = np.array(keys, dtype=np.uint32)
        got, found, _ = self.table.query(arr, default=0)
        for i, k in enumerate(keys):
            if k in self.model:
                assert found[i] and int(got[i]) == self.model[k]
            else:
                assert not found[i]

    @invariant()
    def size_matches(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def export_matches(self):
        k, v = self.table.export()
        assert dict(zip(k.tolist(), v.tolist())) == self.model
        assert np.unique(k).size == k.size


TestDistributedAgainstDict = DistributedMachine.TestCase
TestDistributedAgainstDict.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)
