"""Tests for the all-to-all transposition exchange."""

import numpy as np
import pytest

from repro.hashing.partition import hashed_partition
from repro.memory.layout import pack_pairs, unpack_pairs
from repro.memory.transfer import MemcpyKind, TransferLog
from repro.multigpu.alltoall import (
    reverse_exchange,
    reverse_exchange_fast,
    transpose_exchange,
    transpose_exchange_fast,
)
from repro.multigpu.multisplit import multisplit
from repro.multigpu.partition_table import PartitionTable
from repro.multigpu.topology import p100_nvlink_node
from repro.workloads.distributions import random_values, unique_keys


def setup_exchange(m=4, per_gpu=200, seed=0):
    node = p100_nvlink_node(m)
    part = hashed_partition(m)
    splits = []
    all_pairs = []
    for gpu in range(m):
        keys = unique_keys(per_gpu, seed=seed + gpu * 13 + 1)
        pairs = pack_pairs(keys, random_values(per_gpu, seed=seed + gpu))
        all_pairs.append(pairs)
        splits.append(multisplit(pairs, part))
    table = PartitionTable(np.stack([ms.counts for ms in splits]))
    return node, part, splits, table, all_pairs


class TestTransposeExchange:
    def test_every_gpu_gets_exactly_its_partition(self):
        node, part, splits, table, _ = setup_exchange()
        result = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        for gpu in range(4):
            keys, _ = unpack_pairs(result.received[gpu])
            assert (part(keys) == gpu).all()

    def test_nothing_lost_or_duplicated(self):
        node, _, splits, table, all_pairs = setup_exchange()
        result = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        received = np.concatenate(result.received)
        original = np.concatenate(all_pairs)
        assert np.sort(received).tolist() == np.sort(original).tolist()

    def test_transposed_table_returned(self):
        node, _, splits, table, _ = setup_exchange()
        result = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        assert (result.table.counts == table.counts.T).all()

    def test_transfer_log_matches_offdiagonal(self):
        node, _, splits, table, _ = setup_exchange()
        log = TransferLog()
        transpose_exchange(
            [ms.pairs for ms in splits],
            [ms.offsets for ms in splits],
            table,
            node,
            log=log,
        )
        assert log.total_bytes(MemcpyKind.P2P) == table.offdiagonal_bytes()

    def test_network_seconds_positive(self):
        node, _, splits, table, _ = setup_exchange()
        result = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        assert result.network_seconds > 0

    def test_provenance_shapes(self):
        node, _, splits, table, _ = setup_exchange()
        result = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        for gpu in range(4):
            assert result.provenance[gpu].shape == (result.received[gpu].size, 2)


class TestReverseExchange:
    def test_results_routed_back_to_split_positions(self):
        """The full query loop: ship keys out, answer = f(key), route the
        answers back; every split position must receive f of its key."""
        node, part, splits, table, _ = setup_exchange(seed=5)
        exchange = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        # "answer" = low 32 bits of key + 1
        answers = []
        for gpu in range(4):
            keys, _ = unpack_pairs(exchange.received[gpu])
            answers.append((keys.astype(np.uint64) + np.uint64(1)))
        rev = reverse_exchange(
            answers,
            exchange.provenance,
            [ms.pairs.size for ms in splits],
            node,
        )
        assert rev.network_seconds >= 0
        assert rev.traffic.sum() > 0
        for gpu in range(4):
            keys, _ = unpack_pairs(splits[gpu].pairs)
            assert (rev.outputs[gpu] == keys.astype(np.uint64) + np.uint64(1)).all()

    def test_reverse_is_isomorphism(self):
        """Sending the received pairs straight back reconstructs each
        GPU's multisplit buffer (§IV-B: transposition is reversible)."""
        node, _, splits, table, _ = setup_exchange(seed=6)
        exchange = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        rev = reverse_exchange(
            exchange.received,
            exchange.provenance,
            [ms.pairs.size for ms in splits],
            node,
        )
        for gpu in range(4):
            assert (rev.outputs[gpu] == splits[gpu].pairs).all()

    def test_length_mismatch_rejected(self):
        node, _, splits, table, _ = setup_exchange()
        exchange = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        bad = [r[:-1] for r in exchange.received]
        with pytest.raises(Exception):
            reverse_exchange(
                bad, exchange.provenance, [ms.pairs.size for ms in splits], node
            )


class TestFusedExchange:
    """Index-routed fast path vs the provenance-based reference."""

    def test_received_buffers_identical(self):
        node, _, splits, table, _ = setup_exchange(seed=7)
        ref = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        fused = transpose_exchange_fast(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        for gpu in range(4):
            assert (ref.received[gpu] == fused.received[gpu]).all()
        assert (ref.table.counts == fused.table.counts).all()
        assert ref.network_seconds == fused.network_seconds
        assert fused.provenance is None and fused.routing is not None

    def test_transfer_logs_identical(self):
        node, _, splits, table, _ = setup_exchange(seed=8)
        ref_log, fused_log = TransferLog(), TransferLog()
        transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits],
            table, node, log=ref_log,
        )
        transpose_exchange_fast(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits],
            table, node, log=fused_log,
        )
        assert ref_log.records == fused_log.records

    def test_reverse_outputs_and_traffic_identical(self):
        node, _, splits, table, _ = setup_exchange(seed=9)
        ref = transpose_exchange(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        fused = transpose_exchange_fast(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        answers = []
        for gpu in range(4):
            keys, _ = unpack_pairs(ref.received[gpu])
            answers.append(keys.astype(np.uint64) * np.uint64(3))
        ref_log, fused_log = TransferLog(), TransferLog()
        rev_ref = reverse_exchange(
            answers, ref.provenance, [ms.pairs.size for ms in splits],
            node, log=ref_log,
        )
        rev_fused = reverse_exchange_fast(answers, fused.routing, node, log=fused_log)
        for gpu in range(4):
            assert (rev_ref.outputs[gpu] == rev_fused.outputs[gpu]).all()
        assert (rev_ref.traffic == rev_fused.traffic).all()
        assert rev_ref.network_seconds == rev_fused.network_seconds
        assert ref_log.records == fused_log.records

    def test_build_routing_false_skips_inverse_permutation(self):
        node, _, splits, table, _ = setup_exchange(seed=10)
        fused = transpose_exchange_fast(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits],
            table, node, build_routing=False,
        )
        assert fused.routing is None

    def test_reverse_fast_size_mismatch_rejected(self):
        node, _, splits, table, _ = setup_exchange(seed=11)
        fused = transpose_exchange_fast(
            [ms.pairs for ms in splits], [ms.offsets for ms in splits], table, node
        )
        bad = [r[:-1] if r.size else r for r in fused.received]
        with pytest.raises(Exception):
            reverse_exchange_fast(bad, fused.routing, node)
