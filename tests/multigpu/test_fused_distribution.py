"""Property tests: the fused distribution path is bit-identical to the
reference path — multisplit outputs and accounting, exchange buffers and
logs, reverse routing, and whole-cascade reports/counters."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.hashing.partition import hashed_partition, modulo_partition
from repro.memory.layout import pack_pairs
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.multisplit import multisplit, multisplit_fast
from repro.multigpu.topology import p100_nvlink_node
from repro.simt.counters import TransactionCounter
from repro.workloads.distributions import random_values, unique_keys, zipf_keys


def make_pairs(n, seed=0):
    keys = unique_keys(n, seed=seed)
    return pack_pairs(keys, random_values(n, seed=seed + 1))


def assert_multisplit_identical(pairs, partition, group_size):
    ref_counter, fused_counter = TransactionCounter(), TransactionCounter()
    ref = multisplit(pairs, partition, counter=ref_counter, group_size=group_size)
    fused = multisplit_fast(
        pairs, partition, counter=fused_counter, group_size=group_size
    )
    assert (ref.pairs == fused.pairs).all()
    assert (ref.source_index == fused.source_index).all()
    assert (ref.counts == fused.counts).all()
    assert (ref.offsets == fused.offsets).all()
    assert ref.report.load_sectors == fused.report.load_sectors
    assert ref.report.store_sectors == fused.report.store_sectors
    assert ref.report.warp_collectives == fused.report.warp_collectives
    assert (ref.report.probe_windows == fused.report.probe_windows).all()
    assert ref_counter.snapshot() == fused_counter.snapshot()


class TestMultisplitEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=400),
        m=st.sampled_from([1, 2, 4, 8]),
        group_size=st.sampled_from([1, 4, 32]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @examples(50)
    def test_uniform_keys(self, n, m, group_size, seed):
        assert_multisplit_identical(
            make_pairs(n, seed=seed), hashed_partition(m), group_size
        )

    @given(
        m=st.sampled_from([2, 4, 8]),
        group_size=st.sampled_from([1, 4, 32]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @examples(20)
    def test_empty_partitions(self, m, group_size, seed):
        """Keys all ≡ 0 (mod m): every partition but one is empty."""
        keys = (np.arange(64, dtype=np.uint32) * m).astype(np.uint32)
        pairs = pack_pairs(keys, random_values(64, seed=seed))
        assert_multisplit_identical(pairs, modulo_partition(m), group_size)

    @given(
        m=st.sampled_from([2, 4, 8]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @examples(20)
    def test_skewed_zipf_keys(self, m, seed):
        keys = zipf_keys(300, s=1.4, universe=50, seed=seed)
        pairs = pack_pairs(keys, random_values(300, seed=seed + 1))
        assert_multisplit_identical(pairs, hashed_partition(m), 32)


def build_pair(node_factory, m, n, seed, **kwargs):
    """Two tables over identical topologies: reference and fused."""
    keys = unique_keys(n, seed=seed)
    tables = {}
    for mode in ("reference", "fused"):
        node = node_factory(m)
        tables[mode] = DistributedHashTable.for_workload(
            node, keys, 0.9, distribution=mode, **kwargs
        )
    return keys, tables["reference"], tables["fused"]


def assert_reports_identical(ref, fused):
    assert ref.op == fused.op and ref.num_ops == fused.num_ops
    assert ref.h2d_bytes == fused.h2d_bytes
    assert ref.d2h_bytes == fused.d2h_bytes
    assert (ref.h2d_per_gpu == fused.h2d_per_gpu).all()
    assert (ref.d2h_per_gpu == fused.d2h_per_gpu).all()
    assert ref.alltoall_bytes == fused.alltoall_bytes
    assert ref.alltoall_seconds == fused.alltoall_seconds
    assert ref.reverse_bytes == fused.reverse_bytes
    assert ref.reverse_seconds == fused.reverse_seconds
    assert (ref.partition_table.counts == fused.partition_table.counts).all()
    for a, b in zip(ref.multisplit_reports, fused.multisplit_reports):
        assert a.as_dict() == b.as_dict()
    for a, b in zip(ref.kernel_reports, fused.kernel_reports):
        assert a.as_dict() == b.as_dict()


def assert_devices_identical(ref_table, fused_table):
    for dev_ref, dev_fused in zip(
        ref_table.topology.devices, fused_table.topology.devices
    ):
        assert dev_ref.counter.snapshot() == dev_fused.counter.snapshot()


class TestCascadeEquivalence:
    @given(
        m=st.sampled_from([1, 2, 4, 8]),
        n=st.integers(min_value=1, max_value=600),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @examples(12)
    def test_insert_query_cascades(self, m, n, seed):
        keys, ref, fused = build_pair(p100_nvlink_node, m, n, seed)
        values = random_values(n, seed=seed + 7)

        rep_ref = ref.insert(keys, values, source="host")
        rep_fused = fused.insert(keys, values, source="host")
        assert_reports_identical(rep_ref, rep_fused)
        assert len(ref) == len(fused)

        got_ref, found_ref, qrep_ref = ref.query(keys, source="host")
        got_fused, found_fused, qrep_fused = fused.query(keys, source="host")
        assert (got_ref == got_fused).all()
        assert (found_ref == found_fused).all()
        assert found_fused.all()
        assert_reports_identical(qrep_ref, qrep_fused)

        assert_devices_identical(ref, fused)
        assert ref.transfer_log.records == fused.transfer_log.records
        ref.free()
        fused.free()

    @given(
        m=st.sampled_from([2, 4]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @examples(8)
    def test_erase_cascade(self, m, seed):
        n = 400
        keys, ref, fused = build_pair(p100_nvlink_node, m, n, seed)
        for t in (ref, fused):
            t.insert(keys, keys, source="device")

        erased_ref, erep_ref = ref.erase(keys[: n // 2], source="host")
        erased_fused, erep_fused = fused.erase(keys[: n // 2], source="host")
        assert (erased_ref == erased_fused).all()
        assert erased_fused.all()
        assert_reports_identical(erep_ref, erep_fused)
        assert_devices_identical(ref, fused)
        assert ref.transfer_log.records == fused.transfer_log.records
        ref.free()
        fused.free()

    def test_mixed_present_absent_query(self):
        keys, ref, fused = build_pair(p100_nvlink_node, 4, 300, 55)
        for t in (ref, fused):
            t.insert(keys, keys, source="device")
        pool = unique_keys(1200, seed=56)
        absent = pool[~np.isin(pool, keys)][:300]
        probe = np.empty(600, dtype=np.uint32)
        probe[0::2] = keys
        probe[1::2] = absent
        got_ref, found_ref, rep_ref = ref.query(probe, default=99)
        got_fused, found_fused, rep_fused = fused.query(probe, default=99)
        assert (got_ref == got_fused).all()
        assert (found_ref == found_fused).all()
        assert found_fused[0::2].all() and not found_fused[1::2].any()
        assert (got_fused[1::2] == 99).all()
        assert_reports_identical(rep_ref, rep_fused)
        ref.free()
        fused.free()

    def test_skewed_partitions_modulo(self):
        """Structured keys under k mod m leave partitions empty."""
        node_ref = p100_nvlink_node(4)
        node_fused = p100_nvlink_node(4)
        keys = (np.arange(200, dtype=np.uint32) * 4).astype(np.uint32)  # all on GPU 0
        ref = DistributedHashTable.for_workload(
            node_ref, keys, 0.8, partition=modulo_partition(4),
            distribution="reference",
        )
        fused = DistributedHashTable.for_workload(
            node_fused, keys, 0.8, partition=modulo_partition(4),
            distribution="fused",
        )
        rep_ref = ref.insert(keys, keys)
        rep_fused = fused.insert(keys, keys)
        assert_reports_identical(rep_ref, rep_fused)
        got_ref, found_ref, qref = ref.query(keys)
        got_fused, found_fused, qfused = fused.query(keys)
        assert (got_ref == got_fused).all() and found_fused.all()
        assert_reports_identical(qref, qfused)
        assert_devices_identical(ref, fused)
        assert ref.transfer_log.records == fused.transfer_log.records
        ref.free()
        fused.free()

    def test_group_size_variants(self):
        for group_size in (1, 4, 32):
            keys, ref, fused = build_pair(
                p100_nvlink_node, 4, 250, 77, group_size=group_size
            )
            rep_ref = ref.insert(keys, keys)
            rep_fused = fused.insert(keys, keys)
            assert_reports_identical(rep_ref, rep_fused)
            got_ref, _, _ = ref.query(keys)
            got_fused, _, _ = fused.query(keys)
            assert (got_ref == got_fused).all()
            assert_devices_identical(ref, fused)
            ref.free()
            fused.free()
