"""Tests for the m×m partition table and its transposition plan."""

import numpy as np
import pytest

from repro.constants import PAIR_BYTES
from repro.errors import ConfigurationError
from repro.multigpu.partition_table import PartitionTable


def make_table():
    # Fig. 4's example: 4 GPUs × 7 keys each
    counts = np.array(
        [
            [2, 2, 2, 1],
            [1, 3, 1, 2],
            [3, 1, 2, 1],
            [1, 1, 2, 3],
        ],
        dtype=np.int64,
    )
    return PartitionTable(counts)


class TestScans:
    def test_send_offsets_rowwise(self):
        t = make_table()
        off = t.send_offsets()
        assert off[0].tolist() == [0, 2, 4, 6]
        assert off[1].tolist() == [0, 1, 4, 5]

    def test_recv_offsets_columnwise(self):
        t = make_table()
        off = t.recv_offsets()
        assert off[:, 0].tolist() == [0, 2, 3, 6]
        assert off[:, 1].tolist() == [0, 2, 5, 6]

    def test_recv_counts(self):
        t = make_table()
        assert t.recv_counts().tolist() == [7, 7, 7, 7]

    def test_transpose(self):
        t = make_table()
        tt = t.transposed()
        assert (tt.counts == t.counts.T).all()
        # transposition is an involution (§IV-B: "reversible")
        assert (tt.transposed().counts == t.counts).all()


class TestTraffic:
    def test_diagonal_stays_local(self):
        t = make_table()
        mat = t.traffic_matrix()
        assert (np.diag(mat) == 0).all()
        assert mat[0, 1] == 2 * PAIR_BYTES

    def test_offdiagonal_bytes(self):
        t = make_table()
        total = t.counts.sum() - np.trace(t.counts)
        assert t.offdiagonal_bytes() == total * PAIR_BYTES

    def test_plan_covers_offdiagonal(self):
        t = make_table()
        plan = t.plan()
        assert len(plan) == 12  # m^2 - m messages, all counts > 0 here
        assert sum(e.nbytes for e in plan) == t.offdiagonal_bytes()
        for e in plan:
            assert e.src != e.dst
            assert e.count == t.counts[e.src, e.dst]

    def test_plan_skips_empty_messages(self):
        counts = np.zeros((3, 3), dtype=np.int64)
        counts[0, 1] = 5
        plan = PartitionTable(counts).plan()
        assert len(plan) == 1


class TestValidation:
    def test_square_required(self):
        with pytest.raises(ConfigurationError):
            PartitionTable(np.zeros((2, 3), dtype=np.int64))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionTable(np.array([[-1, 0], [0, 0]]))

    def test_imbalance_uniform(self):
        assert make_table().imbalance() == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        counts = np.array([[4, 0], [4, 0]], dtype=np.int64)
        assert PartitionTable(counts).imbalance() == pytest.approx(2.0)

    def test_imbalance_empty(self):
        assert PartitionTable(np.zeros((2, 2), dtype=np.int64)).imbalance() == 1.0
