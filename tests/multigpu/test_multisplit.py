"""Tests for the single-GPU multisplit primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.partition import hashed_partition, modulo_partition
from repro.memory.layout import pack_pairs, unpack_pairs
from repro.multigpu.multisplit import multisplit
from repro.simt.counters import TransactionCounter
from repro.workloads.distributions import random_values, unique_keys


def make_pairs(n, seed=0):
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    return pack_pairs(keys, values), keys, values


class TestCorrectness:
    def test_classes_grouped_and_complete(self):
        pairs, keys, _ = make_pairs(1000, seed=1)
        part = hashed_partition(4)
        ms = multisplit(pairs, part)
        assert ms.counts.sum() == 1000
        # every class's keys actually hash to it
        for p in range(4):
            chunk = ms.part(p)
            ck, _ = unpack_pairs(chunk)
            assert (part(ck) == p).all()

    def test_permutation_no_loss(self):
        pairs, _, _ = make_pairs(500, seed=2)
        ms = multisplit(pairs, hashed_partition(3))
        assert np.sort(ms.pairs).tolist() == np.sort(pairs).tolist()

    def test_stable_within_class(self):
        pairs, keys, _ = make_pairs(300, seed=3)
        part = modulo_partition(4)
        ms = multisplit(pairs, part)
        for p in range(4):
            src = ms.part_sources(p)
            assert (np.diff(src) > 0).all()  # original order preserved

    def test_source_index_is_inverse_permutation(self):
        pairs, _, _ = make_pairs(200, seed=4)
        ms = multisplit(pairs, hashed_partition(4))
        reconstructed = np.empty_like(pairs)
        reconstructed[ms.source_index] = ms.pairs
        assert (reconstructed == pairs).all()

    def test_offsets_are_exclusive_prefix(self):
        pairs, _, _ = make_pairs(100, seed=5)
        ms = multisplit(pairs, hashed_partition(4))
        assert ms.offsets[0] == 0
        assert (np.diff(ms.offsets) == ms.counts[:-1]).all()

    def test_single_partition_is_identity(self):
        pairs, _, _ = make_pairs(64, seed=6)
        ms = multisplit(pairs, hashed_partition(1))
        assert (ms.pairs == pairs).all()
        assert ms.counts.tolist() == [64]

    def test_empty_input(self):
        ms = multisplit(np.array([], dtype=np.uint64), hashed_partition(4))
        assert ms.counts.tolist() == [0, 0, 0, 0]
        assert ms.pairs.size == 0

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            multisplit(np.zeros((2, 2), dtype=np.uint64), hashed_partition(2))

    @given(
        n=st.integers(min_value=1, max_value=300),
        m=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_partition_property(self, n, m, seed):
        """Multisplit is a permutation grouped by p(k), always."""
        pairs, _, _ = make_pairs(n, seed=seed)
        part = hashed_partition(m)
        ms = multisplit(pairs, part)
        assert ms.counts.sum() == n
        assert np.sort(ms.pairs).tolist() == np.sort(pairs).tolist()
        keys, _ = unpack_pairs(ms.pairs)
        parts = part(keys)
        assert (np.diff(parts) >= 0).all()  # grouped ascending


class TestAccounting:
    def test_m_binary_split_sweeps(self):
        """The paper's simple scheme: m read sweeps + one write sweep."""
        pairs, _, _ = make_pairs(1024, seed=7)
        ms = multisplit(pairs, hashed_partition(4))
        sweep = int(np.ceil(1024 * 8 / 32))
        assert ms.report.load_sectors == 4 * sweep
        # stores total one sweep, rounded up per class
        assert sweep <= ms.report.store_sectors <= sweep + 4

    def test_counter_integration(self):
        pairs, _, _ = make_pairs(256, seed=8)
        counter = TransactionCounter()
        multisplit(pairs, hashed_partition(2), counter=counter)
        assert counter.load_sectors > 0
        assert counter.atomic_adds > 0
        assert counter.kernel_launches == 2

    def test_warp_aggregated_atomics_scale(self):
        """Atomic traffic ~ n·m/32 (one fetch-add per participating
        group per class pass), two orders below per-element."""
        pairs, _, _ = make_pairs(3200, seed=9)
        counter = TransactionCounter()
        multisplit(pairs, hashed_partition(4), counter=counter)
        expected = 3200 * 4 // 32
        assert 0.95 * expected <= counter.atomic_adds <= expected

    def test_matches_slow_compact_path(self):
        """compact_fast (used here) and the looped warp-aggregated
        compact must agree element-for-element."""
        from repro.primitives.compact import compact, compact_fast

        pairs, _, _ = make_pairs(500, seed=10)
        pred = (pairs & np.uint64(1)) == 1
        a = compact(pairs, pred, group_size=32)
        b = compact_fast(pairs, pred, group_size=32)
        assert (a.values == b.values).all()
        assert (a.source_index == b.source_index).all()
        assert a.atomics_used == b.atomics_used
