"""Tests for GPU partition hashes (§IV-B)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.partition import (
    PartitionHash,
    fastrange_partition,
    hashed_partition,
    modulo_partition,
)


class TestModuloPartition:
    def test_fig4_example(self):
        """Fig. 4 uses p(k) = k mod 4."""
        p = modulo_partition(4)
        keys = np.array([0, 1, 2, 3, 4, 5, 6, 7], dtype=np.uint32)
        assert p(keys).tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_structured_keys_imbalance(self):
        """Sequential stride-m keys all land on one GPU — the weakness
        hashed partitioning fixes."""
        p = modulo_partition(4)
        keys = np.arange(0, 4000, 4, dtype=np.uint32)
        balance = p.balance(keys)
        assert balance[0] == 1.0


class TestHashedPartition:
    @pytest.mark.parametrize("factory", [hashed_partition, fastrange_partition])
    def test_range(self, factory):
        p = factory(4)
        keys = np.arange(10000, dtype=np.uint32)
        parts = p(keys)
        assert parts.min() >= 0 and parts.max() < 4

    @pytest.mark.parametrize("factory", [hashed_partition, fastrange_partition])
    def test_balances_structured_keys(self, factory):
        p = factory(4)
        keys = np.arange(0, 40000, 4, dtype=np.uint32)
        balance = p.balance(keys)
        assert balance.min() > 0.20 and balance.max() < 0.30

    @pytest.mark.parametrize("m", [1, 2, 3, 4, 7, 8])
    def test_all_parts_used(self, m):
        p = hashed_partition(m)
        keys = np.arange(m * 2000, dtype=np.uint32)
        assert np.unique(p(keys)).size == m

    def test_deterministic(self):
        keys = np.arange(1000, dtype=np.uint32)
        assert (hashed_partition(4)(keys) == hashed_partition(4)(keys)).all()

    @given(st.integers(min_value=1, max_value=8))
    def test_single_part_maps_everything_to_zero(self, m):
        p = hashed_partition(1)
        keys = np.arange(100, dtype=np.uint32)
        assert (p(keys) == 0).all()


class TestValidation:
    def test_zero_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionHash(0, lambda k: k)

    def test_balance_of_empty(self):
        p = hashed_partition(4)
        b = p.balance(np.array([], dtype=np.uint32))
        assert b.shape == (4,)
