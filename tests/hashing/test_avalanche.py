"""Tests for avalanche quality metrics — certifying §V-A's hash choices."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.avalanche import avalanche_matrix, avalanche_report, chi2_uniformity
from repro.hashing.mixers import fmix32, identity32, mueller
from repro.hashing.tabulation import TabulationHash


class TestAvalancheMatrix:
    def test_shape(self):
        m = avalanche_matrix(fmix32, samples=256)
        assert m.shape == (32, 32)
        assert (0 <= m).all() and (m <= 1).all()

    def test_identity_has_trivial_avalanche(self):
        m = avalanche_matrix(identity32, samples=256)
        # flipping input bit i flips exactly output bit i
        assert np.allclose(np.diag(m), 1.0)
        off = m - np.diag(np.diag(m))
        assert np.allclose(off, 0.0)

    def test_invalid_samples(self):
        with pytest.raises(ConfigurationError):
            avalanche_matrix(fmix32, samples=0)


class TestAvalancheReport:
    def test_fmix32_passes(self):
        """The paper picked fmix32 for its 'favorable avalanche properties'."""
        assert avalanche_report(fmix32, samples=2048).passes(max_bias=0.06)

    def test_mueller_passes(self):
        assert avalanche_report(mueller, samples=2048).passes(max_bias=0.06)

    def test_tabulation_is_decent_but_not_perfect(self):
        """Simple tabulation: flipping input bit i XORs one of only 128
        fixed table deltas, so per-cell flip rates carry ~0.5/sqrt(128)
        sampling noise from the table itself.  Mean bias stays tiny even
        though the worst cell can reach ~0.15-0.2."""
        report = avalanche_report(TabulationHash(0), samples=2048)
        assert report.mean_bias < 0.06
        assert report.max_bias < 0.25

    def test_identity_fails_badly(self):
        report = avalanche_report(identity32, samples=512)
        assert not report.passes()
        assert report.max_bias == pytest.approx(0.5)

    def test_bias_ordering(self):
        report = avalanche_report(fmix32, samples=1024)
        assert report.mean_bias <= report.max_bias


class TestChi2:
    def test_good_mixer_uniform_on_sequential_keys(self):
        assert chi2_uniformity(fmix32, buckets=128, samples=1 << 14) < 1.5

    def test_identity_on_sequential_keys_is_uniform_too(self):
        # sequential keys mod buckets happen to be uniform for identity;
        # this documents why chi2 alone cannot certify a mixer
        assert chi2_uniformity(identity32, buckets=128, samples=1 << 14) < 1.5

    def test_bad_bucket_count_rejected(self):
        with pytest.raises(ConfigurationError):
            chi2_uniformity(fmix32, buckets=1)
