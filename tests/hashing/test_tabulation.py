"""Tests for tabulation hashing (§II's 5-independence route)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.tabulation import TabulationHash


class TestTabulationHash:
    def test_deterministic_per_seed(self):
        xs = np.arange(1000, dtype=np.uint32)
        a, b = TabulationHash(3), TabulationHash(3)
        assert (a(xs) == b(xs)).all()

    def test_different_seeds_differ(self):
        xs = np.arange(1000, dtype=np.uint32)
        assert not (TabulationHash(1)(xs) == TabulationHash(2)(xs)).all()

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            TabulationHash(-1)

    def test_xor_structure(self):
        """h(x) is the XOR of the four per-byte table entries."""
        h = TabulationHash(0)
        x = np.uint32(0xAABBCCDD)
        expected = (
            int(h.tables[0][0xDD])
            ^ int(h.tables[1][0xCC])
            ^ int(h.tables[2][0xBB])
            ^ int(h.tables[3][0xAA])
        )
        assert int(h(x)) == expected

    def test_3_wise_independence_proxy(self):
        """Pairwise XOR of hashes of distinct keys is well mixed."""
        h = TabulationHash(5)
        xs = np.arange(1 << 12, dtype=np.uint32)
        hs = h(xs)
        diff = hs[:-1] ^ hs[1:]
        # each output bit flips about half the time between neighbours
        for bit in range(32):
            frac = np.mean((diff >> np.uint32(bit)) & 1)
            assert 0.40 < frac < 0.60

    def test_bucket_uniformity(self):
        h = TabulationHash(9)
        xs = np.arange(1 << 14, dtype=np.uint32)
        buckets = h(xs) % np.uint32(64)
        counts = np.bincount(buckets.astype(np.int64), minlength=64)
        expected = xs.size / 64
        assert counts.min() > expected * 0.8
        assert counts.max() < expected * 1.2

    def test_translated_gives_independent_member(self):
        h = TabulationHash(0)
        t = h.translated(10)
        xs = np.arange(1000, dtype=np.uint32)
        assert not (h(xs) == t(xs)).all()
        assert t.seed != h.seed

    def test_usable_as_probe_primary(self):
        """Tabulation hash plugs into the table's probing layer."""
        from repro.core.probing import LinearProbing

        probing = LinearProbing(TabulationHash(2))
        pos = probing.position(np.arange(100, dtype=np.uint32), 0, 997)
        assert (0 <= pos).all() and (pos < 997).all()
