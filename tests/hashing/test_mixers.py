"""Tests for the paper's integer finalizers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.mixers import (
    MIXERS,
    fmix32,
    fmix32_inverse,
    fmix64,
    identity32,
    mueller,
    mueller_inverse,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def _ref_fmix32(x: int) -> int:
    """Bit-for-bit transcription of the paper's C code, scalar."""
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    x = (x * 0xC2B2AE35) & 0xFFFFFFFF
    x ^= x >> 16
    return x


def _ref_mueller(x: int) -> int:
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x45D9F3B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


class TestGoldenVectors:
    """Known-answer tests against the scalar reference implementation."""

    @pytest.mark.parametrize("x", [0, 1, 2, 0xDEADBEEF, 0xFFFFFFFF, 12345])
    def test_fmix32(self, x):
        assert int(fmix32(np.uint32(x))) == _ref_fmix32(x)

    @pytest.mark.parametrize("x", [0, 1, 2, 0xDEADBEEF, 0xFFFFFFFF, 54321])
    def test_mueller(self, x):
        assert int(mueller(np.uint32(x))) == _ref_mueller(x)

    def test_fmix32_fixed_known_value(self):
        # murmur3 finalizer of 0 is 0 (all-xor/multiply of zero)
        assert int(fmix32(np.uint32(0))) == 0

    @given(u32)
    def test_fmix32_matches_reference(self, x):
        assert int(fmix32(np.uint32(x))) == _ref_fmix32(x)

    @given(u32)
    def test_mueller_matches_reference(self, x):
        assert int(mueller(np.uint32(x))) == _ref_mueller(x)


class TestBijectivity:
    """§V-A: both functions 'act as isomorphism on the space of 4-byte
    integers (being index permutations)'."""

    @given(u32)
    def test_fmix32_inverse_roundtrip(self, x):
        assert int(fmix32_inverse(fmix32(np.uint32(x)))) == x

    @given(u32)
    def test_mueller_inverse_roundtrip(self, x):
        assert int(mueller_inverse(mueller(np.uint32(x)))) == x

    def test_no_collisions_on_a_block(self):
        xs = np.arange(1 << 16, dtype=np.uint32)
        assert np.unique(fmix32(xs)).size == xs.size
        assert np.unique(mueller(xs)).size == xs.size


class TestVectorization:
    def test_vector_matches_scalar(self):
        xs = np.array([0, 1, 0xDEADBEEF, 99999], dtype=np.uint32)
        out = fmix32(xs)
        for x, y in zip(xs, out):
            assert int(y) == _ref_fmix32(int(x))

    def test_input_not_mutated(self):
        xs = np.arange(10, dtype=np.uint32)
        fmix32(xs)
        mueller(xs)
        assert xs.tolist() == list(range(10))

    def test_accepts_python_ints(self):
        assert fmix32(12345).shape == ()


class TestFmix64:
    def test_zero_maps_to_zero(self):
        assert int(fmix64(np.uint64(0))) == 0

    def test_bijective_on_block(self):
        xs = np.arange(1 << 14, dtype=np.uint64)
        assert np.unique(fmix64(xs)).size == xs.size


class TestRegistry:
    def test_identity_is_identity(self):
        xs = np.arange(100, dtype=np.uint32)
        assert (identity32(xs) == xs).all()

    def test_registry_contents(self):
        assert set(MIXERS) == {"fmix32", "mueller", "identity"}
