"""Tests for translated hash families and double hashing pairs."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hashing.families import (
    DoubleHashFamily,
    HashFunction,
    make_double_family,
    make_hash,
)
from repro.hashing.mixers import fmix32

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestHashFunction:
    def test_zero_translation_is_plain_mixer(self):
        h = make_hash("fmix32")
        xs = np.arange(100, dtype=np.uint32)
        assert (h(xs) == fmix32(xs)).all()

    def test_translated_variant_differs(self):
        h0 = make_hash("fmix32")
        h1 = h0.translated(1)
        xs = np.arange(1000, dtype=np.uint32)
        assert not (h0(xs) == h1(xs)).all()

    @given(u32, u32)
    def test_translation_definition(self, x, y):
        """h_y(x) = h(x + y) exactly (§V-A)."""
        h = HashFunction(fmix32, translation=y)
        expected = fmix32(np.uint32((x + y) & 0xFFFFFFFF))
        assert int(h(np.uint32(x))) == int(expected)

    def test_translated_stays_bijective(self):
        h = make_hash("mueller", translation=0x1234)
        xs = np.arange(1 << 14, dtype=np.uint32)
        assert np.unique(h(xs)).size == xs.size

    def test_unknown_mixer_rejected(self):
        with pytest.raises(ConfigurationError):
            make_hash("nonsense")


class TestDoubleHashFamily:
    def test_step_always_odd(self):
        fam = make_double_family()
        xs = np.arange(1 << 12, dtype=np.uint32)
        assert (fam.step(xs) & 1 == 1).all()

    def test_window_hash_attempt_zero_is_primary(self):
        fam = make_double_family()
        xs = np.arange(256, dtype=np.uint32)
        assert (fam.window_hash(xs, 0) == fam.primary(xs)).all()

    def test_window_hash_linear_in_attempt(self):
        fam = make_double_family()
        xs = np.arange(64, dtype=np.uint32)
        h1 = fam.window_hash(xs, 1)
        h2 = fam.window_hash(xs, 2)
        step = fam.step(xs)
        assert ((h2 - h1) == step).all()

    def test_negative_attempt_rejected(self):
        fam = make_double_family()
        with pytest.raises(ConfigurationError):
            fam.window_hash(np.arange(4, dtype=np.uint32), -1)

    def test_rebuilt_family_differs(self):
        fam = make_double_family()
        re = fam.rebuilt(0)
        xs = np.arange(1000, dtype=np.uint32)
        assert not (fam.primary(xs) == re.primary(xs)).all()
        assert not (fam.step(xs) == re.step(xs)).all()

    def test_rebuilt_salts_distinct(self):
        fam = make_double_family()
        xs = np.arange(1000, dtype=np.uint32)
        assert not (fam.rebuilt(1).primary(xs) == fam.rebuilt(2).primary(xs)).all()

    def test_same_mixer_pair_gets_separated(self):
        """Identical h and g would degrade to linear window stepping."""
        fam = make_double_family("fmix32", "fmix32")
        xs = np.arange(1000, dtype=np.uint32)
        assert not (fam.h(xs) == fam.g(xs)).all()

    def test_distinct_keys_get_distinct_steps_mostly(self):
        fam = make_double_family()
        xs = np.arange(1 << 12, dtype=np.uint32)
        steps = fam.step(xs)
        # not a constant-step (linear) scheme
        assert np.unique(steps).size > xs.size // 2
