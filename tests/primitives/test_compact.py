"""Tests for warp-aggregated stream compaction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.primitives.compact import compact, histogram
from repro.simt.counters import TransactionCounter


class TestCompact:
    def test_selects_and_preserves_order(self):
        vals = np.arange(100)
        r = compact(vals, vals % 3 == 0)
        assert (r.values == np.arange(0, 100, 3)).all()
        assert (r.source_index == np.arange(0, 100, 3)).all()

    def test_none_selected(self):
        r = compact(np.arange(10), np.zeros(10, dtype=bool))
        assert r.values.size == 0
        assert r.atomics_used == 0

    def test_all_selected(self):
        vals = np.arange(64)
        r = compact(vals, np.ones(64, dtype=bool), group_size=32)
        assert (r.values == vals).all()
        assert r.atomics_used == 2  # one per 32-lane group

    def test_warp_aggregation_saves_atomics(self):
        """One atomic per participating group, not per element [23]."""
        vals = np.arange(3200)
        pred = np.ones(3200, dtype=bool)
        r32 = compact(vals, pred, group_size=32)
        r1 = compact(vals, pred, group_size=1)
        assert r32.atomics_used == 100
        assert r1.atomics_used == 3200
        assert (r32.values == r1.values).all()

    def test_sparse_predicate_skips_empty_groups(self):
        pred = np.zeros(320, dtype=bool)
        pred[5] = True  # only one group participates
        r = compact(np.arange(320), pred, group_size=32)
        assert r.atomics_used == 1

    def test_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            compact(np.arange(5), np.ones(4, dtype=bool))

    def test_counter_integration(self):
        c = TransactionCounter()
        compact(np.arange(1000, dtype=np.int64), np.arange(1000) % 2 == 0, counter=c)
        assert c.load_sectors > 0 and c.atomic_adds > 0


class TestHistogram:
    def test_counts(self):
        vals = np.array([0, 1, 1, 3, 3, 3])
        assert histogram(vals, 4).tolist() == [1, 2, 0, 3]

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            histogram(np.array([5]), 4)
        with pytest.raises(ConfigurationError):
            histogram(np.array([-1]), 4)

    def test_empty(self):
        assert histogram(np.array([], dtype=np.int64), 3).tolist() == [0, 0, 0]

    def test_counter_atomics(self):
        c = TransactionCounter()
        histogram(np.arange(256) % 8, 8, counter=c)
        assert c.atomic_adds > 0
