"""Property tests: counting_scatter == num_bins × compact_fast.

``counting_scatter`` resolves a compiled single-pass histogram+scatter
(:func:`repro.core.kernels_jit.scatter_permutation`) whenever a JIT
provider is live, falling back to the stable-argsort path otherwise;
``TestCompiledPermutation`` pins the two paths to the same permutation.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.kernels_jit import (
    compiled_available,
    reverse_gather_fill,
    scatter_permutation,
)
from repro.errors import ConfigurationError
from repro.primitives.compact import compact_fast
from repro.primitives.scatter import counting_scatter
from repro.simt.counters import TransactionCounter


def reference_scatter(values, bins, num_bins, counter, group_size):
    """The m-binary-split oracle: one compact_fast sweep per bin."""
    chunks, sources, counts = [], [], np.zeros(num_bins, dtype=np.int64)
    atomics = 0
    for b in range(num_bins):
        res = compact_fast(values, bins == b, counter=counter, group_size=group_size)
        chunks.append(res.values)
        sources.append(res.source_index)
        counts[b] = res.values.shape[0]
        atomics += res.atomics_used
    out = np.concatenate(chunks) if chunks else np.empty(0, dtype=values.dtype)
    src = np.concatenate(sources) if sources else np.empty(0, dtype=np.int64)
    offsets = np.zeros(num_bins, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return out, src, counts, offsets, atomics


class TestEquivalence:
    @given(
        n=st.integers(min_value=0, max_value=400),
        num_bins=st.integers(min_value=1, max_value=9),
        group_size=st.sampled_from([1, 4, 32]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @examples(60)
    def test_matches_m_compact_fast_passes(self, n, num_bins, group_size, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**64, size=n, dtype=np.uint64)
        bins = rng.integers(0, num_bins, size=n, dtype=np.int64)

        ref_counter, fused_counter = TransactionCounter(), TransactionCounter()
        out, src, counts, offsets, atomics = reference_scatter(
            values, bins, num_bins, ref_counter, group_size
        )
        cs = counting_scatter(
            values, bins, num_bins, counter=fused_counter, group_size=group_size
        )
        assert (cs.values == out).all()
        assert (cs.source_index == src).all()
        assert (cs.counts == counts).all()
        assert (cs.offsets == offsets).all()
        assert cs.atomics_used == atomics
        assert fused_counter.snapshot() == ref_counter.snapshot()

    def test_skewed_all_one_bin(self):
        values = np.arange(100, dtype=np.uint64)
        bins = np.full(100, 2, dtype=np.int64)
        counter = TransactionCounter()
        cs = counting_scatter(values, bins, 4, counter=counter, group_size=32)
        assert (cs.values == values).all()
        assert cs.counts.tolist() == [0, 0, 100, 0]
        # each group has exactly one class present: 4 groups of 32
        assert cs.atomics_used == 4

    def test_empty_input_charges_like_reference(self):
        ref_counter, fused_counter = TransactionCounter(), TransactionCounter()
        empty = np.empty(0, dtype=np.uint64)
        bins = np.empty(0, dtype=np.int64)
        reference_scatter(empty, bins, 3, ref_counter, 32)
        cs = counting_scatter(empty, bins, 3, counter=fused_counter, group_size=32)
        assert cs.values.size == 0 and cs.counts.tolist() == [0, 0, 0]
        assert fused_counter.snapshot() == ref_counter.snapshot()

    def test_stability_within_bin(self):
        values = np.array([10, 11, 12, 13, 14, 15], dtype=np.uint64)
        bins = np.array([1, 0, 1, 0, 1, 0], dtype=np.int64)
        cs = counting_scatter(values, bins, 2)
        assert cs.values.tolist() == [11, 13, 15, 10, 12, 14]
        assert cs.source_index.tolist() == [1, 3, 5, 0, 2, 4]


class TestCompiledPermutation:
    """The compiled permutation ≡ the stable-argsort path, bit for bit."""

    @pytest.mark.skipif(
        not compiled_available(), reason="no JIT provider on this host"
    )
    @given(
        n=st.integers(min_value=0, max_value=500),
        num_bins=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @examples(40)
    def test_matches_stable_argsort(self, n, num_bins, seed):
        rng = np.random.default_rng(seed)
        bins = rng.integers(0, num_bins, size=n, dtype=np.int64)
        result = scatter_permutation(bins, num_bins)
        assert result is not None
        src, counts, offsets = result
        assert (src == np.argsort(bins, kind="stable")).all()
        assert (counts == np.bincount(bins, minlength=num_bins)).all()
        expected_off = np.zeros(num_bins, dtype=np.int64)
        np.cumsum(counts[:-1], out=expected_off[1:])
        assert (offsets == expected_off).all()

    def test_no_provider_returns_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PROVIDER", "none")
        assert scatter_permutation(np.zeros(4, dtype=np.int64), 2) is None

    @pytest.mark.skipif(
        not compiled_available(), reason="no JIT provider on this host"
    )
    @given(
        n=st.integers(min_value=0, max_value=300),
        num_bins=st.integers(min_value=1, max_value=9),
        group_size=st.sampled_from([1, 4, 32]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @examples(30)
    def test_counting_scatter_identical_with_provider_off(
        self, n, num_bins, group_size, seed
    ):
        """Same outputs *and* modelled counters whether the compiled
        permutation or the argsort fallback serviced the call."""
        import os
        from unittest import mock

        rng = np.random.default_rng(seed)
        values = rng.integers(0, 2**64, size=n, dtype=np.uint64)
        bins = rng.integers(0, num_bins, size=n, dtype=np.int64)

        on_counter = TransactionCounter()
        on = counting_scatter(
            values, bins, num_bins, counter=on_counter, group_size=group_size
        )
        off_counter = TransactionCounter()
        with mock.patch.dict(os.environ, {"REPRO_JIT_PROVIDER": "none"}):
            off = counting_scatter(
                values, bins, num_bins, counter=off_counter, group_size=group_size
            )
        assert (on.values == off.values).all()
        assert (on.source_index == off.source_index).all()
        assert (on.counts == off.counts).all()
        assert (on.offsets == off.offsets).all()
        assert on.atomics_used == off.atomics_used
        assert on_counter.snapshot() == off_counter.snapshot()

    def test_interp_provider_matches(self, monkeypatch):
        """The undecorated loop body itself is the oracle-checked one."""
        monkeypatch.setenv("REPRO_JIT_PROVIDER", "interp")
        bins = np.array([2, 0, 1, 2, 0, 2], dtype=np.int64)
        src, counts, offsets = scatter_permutation(bins, 3)
        assert src.tolist() == [1, 4, 2, 0, 3, 5]
        assert counts.tolist() == [2, 1, 3]
        assert offsets.tolist() == [0, 2, 3]


def reference_gather_fill(counts, bases):
    """The vectorized oracle: per-partition arange runs, concatenated."""
    runs = [
        np.arange(int(b), int(b) + int(c), dtype=np.int64)
        for c, b in zip(counts, bases)
    ]
    return (
        np.concatenate(runs) if runs else np.empty(0, dtype=np.int64)
    )


class TestCompiledReverseGather:
    """The compiled reverse-gather fill ≡ the vectorized path, bit for bit."""

    @pytest.mark.skipif(
        not compiled_available(), reason="no JIT provider on this host"
    )
    @given(
        num_parts=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @examples(40)
    def test_matches_vectorized_fill(self, num_parts, seed):
        rng = np.random.default_rng(seed)
        counts = rng.integers(0, 50, size=num_parts).astype(np.int64)
        bases = rng.integers(0, 1 << 40, size=num_parts).astype(np.int64)
        expected = reference_gather_fill(counts, bases)
        out = np.empty(int(counts.sum()), dtype=np.int64)
        assert reverse_gather_fill(counts, bases, out)
        assert (out == expected).all()

    def test_no_provider_returns_false_untouched(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PROVIDER", "none")
        out = np.full(5, -7, dtype=np.int64)
        counts = np.array([2, 3], dtype=np.int64)
        bases = np.array([10, 100], dtype=np.int64)
        assert not reverse_gather_fill(counts, bases, out)
        assert (out == -7).all()

    def test_interp_provider_matches(self, monkeypatch):
        """The undecorated loop body itself is the oracle-checked one."""
        monkeypatch.setenv("REPRO_JIT_PROVIDER", "interp")
        counts = np.array([0, 3, 1], dtype=np.int64)
        bases = np.array([99, 4, 40], dtype=np.int64)
        out = np.empty(4, dtype=np.int64)
        assert reverse_gather_fill(counts, bases, out)
        assert out.tolist() == [4, 5, 6, 40]

    def test_empty_partitions(self):
        out = np.empty(0, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        # provider availability decides True/False; either way no write
        reverse_gather_fill(empty, empty, out)
        assert out.size == 0


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            counting_scatter(np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=np.int64), 2)

    def test_bins_out_of_range(self):
        with pytest.raises(ConfigurationError):
            counting_scatter(np.zeros(3, dtype=np.uint64), np.array([0, 1, 2]), 2)

    def test_bad_group_size(self):
        with pytest.raises(ConfigurationError):
            counting_scatter(
                np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=np.int64), 2,
                group_size=65,
            )

    def test_bad_num_bins(self):
        with pytest.raises(ConfigurationError):
            counting_scatter(np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=np.int64), 0)
