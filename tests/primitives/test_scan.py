"""Tests for prefix-scan primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.primitives.scan import exclusive_scan, inclusive_scan, segmented_reduce
from repro.simt.counters import TransactionCounter


class TestExclusiveScan:
    def test_known_values(self):
        assert exclusive_scan(np.array([1, 2, 3, 4])).values.tolist() == [0, 1, 3, 6]

    def test_empty(self):
        r = exclusive_scan(np.array([], dtype=np.int64))
        assert r.values.size == 0 and r.operations == 0 and r.levels == 0

    def test_single_element(self):
        r = exclusive_scan(np.array([7]))
        assert r.values.tolist() == [0]
        assert r.levels == 0

    def test_work_complexity(self):
        """Blelloch: 2(n-1) adds over ceil(log2 n) levels."""
        r = exclusive_scan(np.arange(1000))
        assert r.operations == 2 * 999
        assert r.levels == 10

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            exclusive_scan(np.zeros((2, 2)))

    def test_counter_charged(self):
        c = TransactionCounter()
        exclusive_scan(np.arange(1000, dtype=np.int64), counter=c)
        assert c.load_sectors > 0 and c.store_sectors > 0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_matches_cumsum_property(self, xs):
        arr = np.array(xs, dtype=np.int64)
        out = exclusive_scan(arr).values
        assert out[0] == 0
        assert (out[1:] == np.cumsum(arr)[:-1]).all()


class TestInclusiveScan:
    def test_relationship_with_exclusive(self):
        arr = np.array([3, 1, 4, 1, 5])
        inc = inclusive_scan(arr).values
        exc = exclusive_scan(arr).values
        assert (inc == exc + arr).all()

    def test_total(self):
        arr = np.arange(100)
        assert inclusive_scan(arr).values[-1] == arr.sum()


class TestSegmentedReduce:
    def test_basic_segments(self):
        vals = np.arange(10)
        offs = np.array([0, 3, 3, 10])
        out = segmented_reduce(vals, offs).values
        assert out.tolist() == [3, 0, 42]

    def test_single_segment(self):
        out = segmented_reduce(np.arange(5), np.array([0, 5])).values
        assert out.tolist() == [10]

    def test_unsorted_offsets_rejected(self):
        with pytest.raises(ConfigurationError):
            segmented_reduce(np.arange(5), np.array([3, 0]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            segmented_reduce(np.arange(5), np.array([0, 9]))

    def test_multi_value_compression_use_case(self):
        """The §II sort-and-compress flow: sorted keys -> per-key sums."""
        keys = np.array([1, 1, 2, 5, 5, 5], dtype=np.uint32)
        vals = np.array([10, 20, 5, 1, 1, 1], dtype=np.int64)
        uniq, starts = np.unique(keys, return_index=True)
        offs = np.concatenate([starts, [keys.size]])
        sums = segmented_reduce(vals, offs).values
        assert sums.tolist() == [30, 5, 3]
