"""Tests for the LSD radix sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.primitives.radix_sort import DIGIT_BITS, radix_sort, radix_sort_pairs
from repro.simt.counters import TransactionCounter
from repro.workloads.distributions import uniform_keys


class TestCorrectness:
    def test_sorts_random_keys(self):
        keys = uniform_keys(5000, seed=1)
        r = radix_sort(keys)
        assert (np.sort(keys) == r.keys).all()

    def test_values_follow_keys(self):
        keys = uniform_keys(2000, seed=2)
        vals = np.arange(2000, dtype=np.uint32)
        r = radix_sort_pairs(keys, vals)
        assert (keys[r.values] == r.keys).all()  # value = original index

    def test_stability(self):
        keys = np.array([3, 1, 3, 1, 3], dtype=np.uint32)
        r = radix_sort_pairs(keys, np.arange(5, dtype=np.uint32))
        assert r.values.tolist() == [1, 3, 0, 2, 4]

    def test_permutation_is_exact(self):
        keys = uniform_keys(1000, seed=3)
        r = radix_sort(keys)
        assert (keys[r.permutation] == r.keys).all()
        assert np.unique(r.permutation).size == 1000

    def test_empty_and_single(self):
        assert radix_sort(np.array([], dtype=np.uint32)).keys.size == 0
        assert radix_sort(np.array([5], dtype=np.uint32)).keys.tolist() == [5]

    def test_uint64_keys(self):
        keys = np.array([1 << 40, 1, 1 << 33], dtype=np.uint64)
        r = radix_sort(keys)
        assert r.keys.tolist() == [1, 1 << 33, 1 << 40]
        assert r.passes == 8

    def test_signed_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            radix_sort(np.array([1, 2], dtype=np.int32))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            radix_sort_pairs(
                np.array([1], dtype=np.uint32), np.array([1, 2], dtype=np.uint32)
            )

    @given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=0, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_sorting_property(self, xs):
        keys = np.array(xs, dtype=np.uint32)
        r = radix_sort(keys)
        assert (np.sort(keys) == r.keys).all()


class TestWorkAccounting:
    def test_pass_count(self):
        keys = uniform_keys(100, seed=4)
        assert radix_sort(keys).passes == 32 // DIGIT_BITS

    def test_reduced_key_bits_fewer_passes(self):
        keys = (uniform_keys(100, seed=5) & np.uint32(0xFFFF))
        r = radix_sort(keys, key_bits=16)
        assert r.passes == 2
        assert (np.sort(keys) == r.keys).all()

    def test_aux_memory_is_one_buffer(self):
        keys = uniform_keys(1000, seed=6)
        vals = np.arange(1000, dtype=np.uint32)
        r = radix_sort_pairs(keys, vals)
        assert r.aux_bytes == 1000 * 8  # ping-pong buffer for the pairs

    def test_counter_per_pass_sweeps(self):
        keys = uniform_keys(4096, seed=7)
        c = TransactionCounter()
        radix_sort(keys, counter=c)
        sweep = 4096 * 4 // 32
        assert c.load_sectors >= 4 * sweep
        assert c.store_sectors >= 4 * sweep
        assert c.atomic_adds > 0

    def test_invalid_key_bits(self):
        with pytest.raises(ConfigurationError):
            radix_sort(np.array([1], dtype=np.uint32), key_bits=0)
        with pytest.raises(ConfigurationError):
            radix_sort(np.array([1], dtype=np.uint32), key_bits=64)
