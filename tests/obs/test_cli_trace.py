"""``repro trace``: the CLI exit of the observability spine."""

import json

from repro.cli import main
from repro.obs.export import validate_trace


class TestTraceCommand:
    def test_smoke_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "smoke.trace.json"
        assert main(["trace", "--smoke", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "wrote" in printed and "spans" in printed

        data = json.loads(out.read_text())
        assert validate_trace(data) == []
        events = [e for e in data["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        # the acceptance taxonomy: H2D, multisplit, all-to-all, kernels
        assert {"H2D", "multisplit", "all-to-all", "kernel phase"} <= names
        cats = {e["cat"] for e in events}
        assert {"cascade", "transfer", "distribution", "kernel"} <= cats
        # m=4 insert + query: every shard appears for both ops
        for op in ("insert", "query"):
            shards = {
                e["tid"] for e in events if e["name"].startswith(f"{op} shard")
            }
            assert shards == {1, 2, 3, 4}, op
        # metrics ride along in the same file
        assert data["metrics"]["counter.cascade.insert.count"] == 1

    def test_smoke_obeys_m(self, tmp_path):
        out = tmp_path / "m2.trace.json"
        assert main(["trace", "--smoke", "--m", "2", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        shards = {
            e["tid"]
            for e in data["traceEvents"]
            if e.get("ph") == "X" and "shard" in e["name"]
        }
        assert shards == {1, 2}
