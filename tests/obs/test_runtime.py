"""The global obs switch: zero-overhead when off, scoped sessions,
backend-independent span trees (serial == thread == process modulo pids).
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.workloads.distributions import random_values, unique_keys


class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_span_is_shared_noop(self):
        """Disabled spans are one shared nullcontext — no allocation."""
        a = obs.span("x", "phase")
        b = obs.span("y", "kernel", attr=1)
        assert a is b
        with a as live:
            assert live is None

    def test_facade_noops(self):
        assert obs.add_span("x", "phase", 0.0, 1.0) is None
        assert obs.record_shard_spans([]) == []
        obs.observe_cascade(None)  # must not touch the report
        obs.observe_kernel(None)
        obs.observe_transfers(None)

    def test_nothing_recorded_when_disabled(self):
        node = p100_nvlink_node(2)
        keys = unique_keys(500, seed=31)
        table = DistributedHashTable.for_workload(node, keys, 0.8)
        table.insert(keys, keys, source="host")
        table.free()
        assert obs.get_recorder() is None or not obs.enabled()


class TestSession:
    def test_session_scopes_state(self):
        assert not obs.enabled()
        with obs.session() as (recorder, metrics):
            assert obs.enabled()
            assert obs.get_recorder() is recorder
            assert obs.get_metrics() is metrics
            with obs.span("x", "phase"):
                pass
        assert not obs.enabled()
        assert len(recorder.spans) == 1  # readable after the session

    def test_nested_sessions_restore(self):
        with obs.session() as (outer, _):
            with obs.session() as (inner, _):
                assert obs.get_recorder() is inner
            assert obs.get_recorder() is outer

    def test_configure_roundtrip(self):
        from repro.obs import runtime

        recorder, metrics = obs.configure(enabled=True)
        try:
            assert obs.enabled() and recorder is not None and metrics is not None
            with obs.span("x", "phase"):
                pass
            assert len(recorder.spans) == 1
        finally:
            obs.configure(enabled=False)
            runtime._STATE.recorder = None
            runtime._STATE.metrics = None
        assert not obs.enabled()


def _traced_cascade(engine, workers=None):
    node = p100_nvlink_node(4)
    n = 2000
    keys = unique_keys(n, seed=33)
    values = random_values(n, seed=34)
    with obs.session() as (recorder, metrics):
        table = DistributedHashTable.for_workload(
            node, keys, 0.85, engine=engine, workers=workers
        )
        try:
            table.insert(keys, values, source="host")
            _, found, _ = table.query(keys, source="host")
        finally:
            table.free()
    assert found.all()
    return recorder, metrics


class TestInstrumentation:
    def test_cascade_span_taxonomy(self):
        recorder, metrics = _traced_cascade("serial")
        cats = recorder.categories()
        assert {"cascade", "transfer", "distribution", "engine", "kernel"} <= cats
        names = {s.name for s in recorder.spans}
        assert {"H2D", "multisplit", "all-to-all", "kernel phase"} <= names
        # per-shard kernel spans for all 4 GPUs on both ops
        shard_spans = [
            s for s in recorder.by_category("kernel") if "shard" in s.name
        ]
        assert {s.attrs["shard"] for s in shard_spans} == {0, 1, 2, 3}
        # metrics observed alongside the trace
        assert metrics.counter("cascade.insert.count") == 1
        assert metrics.counter("transfer.h2d.bytes") > 0

    def test_shard_spans_nest_under_engine_dispatch(self):
        recorder, _ = _traced_cascade("serial")
        dispatch = [s for s in recorder.spans if s.name.startswith("dispatch")]
        assert dispatch
        for d in dispatch:
            kids = recorder.children(d.span_id)
            assert kids and all(k.category == "kernel" for k in kids)

    def test_hierarchy_resolves_to_cascade_roots(self):
        recorder, _ = _traced_cascade("serial")
        by_id = {s.span_id: s for s in recorder.spans}
        roots = set()
        for s in recorder.spans:
            cur = s
            while cur.parent_id is not None:
                cur = by_id[cur.parent_id]
            roots.add(cur.name)
        assert roots == {"insert cascade", "query cascade"}


class TestBackendEquivalence:
    def test_serial_vs_thread_tree(self):
        serial, _ = _traced_cascade("serial")
        thread, _ = _traced_cascade("thread", workers=2)
        assert serial.tree() == thread.tree()

    @pytest.mark.slow
    def test_serial_vs_process_tree_modulo_pids(self):
        serial, _ = _traced_cascade("serial")
        process, _ = _traced_cascade("process", workers=2)
        assert serial.tree() == process.tree()
        # the process trace carries real worker pids, foreign to ours
        worker_pids = {
            s.pid
            for s in process.spans
            if "shard" in s.name and s.category == "kernel"
        }
        assert worker_pids and worker_pids != {os.getpid()}
