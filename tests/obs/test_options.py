"""The unified option vocabulary and its deprecation shims."""

import warnings

import numpy as np
import pytest

from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.options import (
    UNSET,
    reject_unknown,
    reset_deprecation_warnings,
    resolve_renamed,
)
from repro.pipeline.driver import AsyncCascadeDriver
from repro.workloads.distributions import unique_keys


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestResolveRenamed:
    def test_canonical_passes_through(self):
        assert resolve_renamed(
            "X", {}, old="a", new="b", value="v", default="d"
        ) == "v"

    def test_default_when_unset(self):
        assert resolve_renamed(
            "X", {}, old="a", new="b", value=UNSET, default="d"
        ) == "d"

    def test_legacy_warns_and_maps(self):
        legacy = {"a": "v"}
        with pytest.warns(DeprecationWarning, match="'a=' is deprecated"):
            got = resolve_renamed(
                "X", legacy, old="a", new="b", value=UNSET, default="d"
            )
        assert got == "v" and legacy == {}

    def test_warns_once_per_owner_keyword(self):
        with pytest.warns(DeprecationWarning):
            resolve_renamed("X", {"a": 1}, old="a", new="b", value=UNSET, default=0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # second use is silent — warn-once per (owner, keyword)
            resolve_renamed("X", {"a": 2}, old="a", new="b", value=UNSET, default=0)
        with pytest.warns(DeprecationWarning):
            # a different owner still gets its own warning
            resolve_renamed("Y", {"a": 3}, old="a", new="b", value=UNSET, default=0)

    def test_both_spellings_rejected(self):
        with pytest.raises(ConfigurationError, match="both"):
            resolve_renamed(
                "X", {"a": 1}, old="a", new="b", value=2, default=0
            )

    def test_reject_unknown(self):
        reject_unknown("X", {})
        with pytest.raises(TypeError, match="unexpected keyword"):
            reject_unknown("X", {"bogus": 1})


class TestShims:
    def test_table_methods_accept_executor(self):
        t = WarpDriveHashTable(64)
        keys = np.arange(8, dtype=np.uint32)
        with pytest.warns(DeprecationWarning, match="WarpDriveHashTable"):
            t.insert(keys, keys, executor="fast")
        values, found = t.query(keys, kernels="fast")
        assert found.all() and (values == keys).all()

    def test_table_rejects_conflicting_spellings(self):
        t = WarpDriveHashTable(64)
        keys = np.arange(4, dtype=np.uint32)
        with pytest.raises(ConfigurationError):
            t.insert(keys, keys, kernels="fast", executor="fast")

    def test_table_rejects_unknown_keyword(self):
        t = WarpDriveHashTable(64)
        keys = np.arange(4, dtype=np.uint32)
        with pytest.raises(TypeError):
            t.insert(keys, keys, bogus=1)

    def test_table_engine_option_means_shared_storage(self):
        t = WarpDriveHashTable(64, engine="process")
        try:
            assert t.shm_descriptor() is not None
        finally:
            t.free()
        t = WarpDriveHashTable(64, engine="serial")
        assert t.shm_descriptor() is None

    def test_distributed_accepts_executor(self):
        node = p100_nvlink_node(2)
        with pytest.warns(DeprecationWarning, match="DistributedHashTable"):
            t = DistributedHashTable.for_load_factor(
                node, 200, 0.8, executor="serial"
            )
        assert t.engine.name == "serial"
        t.free()

    def test_driver_accepts_wall_clock(self):
        node = p100_nvlink_node(2)
        keys = unique_keys(200, seed=41)
        table = DistributedHashTable.for_workload(node, keys, 0.8)
        with pytest.warns(DeprecationWarning, match="AsyncCascadeDriver"):
            driver = AsyncCascadeDriver(table, wall_clock=True)
        assert driver.measure is True
        assert driver.wall_clock is True  # back-compat read alias
        table.free()

    def test_driver_rejects_conflicting_spellings(self):
        node = p100_nvlink_node(2)
        keys = unique_keys(200, seed=42)
        table = DistributedHashTable.for_workload(node, keys, 0.8)
        with pytest.raises(ConfigurationError):
            AsyncCascadeDriver(table, measure=True, wall_clock=True)
        table.free()

    def test_partitioned_accepts_executor(self):
        from repro.core.partitioned import PartitionedWarpDriveTable

        with pytest.warns(DeprecationWarning, match="PartitionedWarpDriveTable"):
            t = PartitionedWarpDriveTable(256, executor="serial")
        assert t.engine.name == "serial"
        t.free()


class TestTopLevelExports:
    def test_unified_entry_points(self):
        import repro

        for name in (
            "WarpDriveHashTable",
            "DistributedHashTable",
            "AsyncCascadeDriver",
            "StreamResult",
            "CascadeReport",
            "obs",
        ):
            assert hasattr(repro, name), name
            assert name in repro.__all__
