"""Reportable contract: every report type serializes through one path.

Each ``to_dict()`` payload must be plain-JSON (``json.dumps`` succeeds),
carry a ``schema_version``, use stable snake_case keys, and contain no
NaN/infinity (non-finite floats collapse to ``None``).
"""

import json
import math

import numpy as np
import pytest

from repro.exec.metrics import ShardSpan
from repro.memory.transfer import MemcpyKind, TransferRecord
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.obs.protocol import SCHEMA_VERSION, Reportable, to_jsonable
from repro.pipeline.driver import AsyncCascadeDriver
from repro.pipeline.timeline import Span
from repro.workloads.distributions import random_values, unique_keys


def _walk(value, path="$"):
    """Yield every (path, leaf) in a nested JSON-ish structure."""
    if isinstance(value, dict):
        for k, v in value.items():
            assert isinstance(k, str), f"{path}: non-string key {k!r}"
            yield from _walk(v, f"{path}.{k}")
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from _walk(v, f"{path}[{i}]")
    else:
        yield path, value


def _assert_reportable(obj):
    assert isinstance(obj, Reportable)
    payload = obj.to_dict()
    assert payload["schema_version"] == type(obj).schema_version
    json.dumps(payload)  # raises on anything non-JSON
    for path, leaf in _walk(payload):
        assert leaf is None or isinstance(leaf, (bool, int, float, str)), (
            f"{path}: non-plain leaf {type(leaf).__name__}"
        )
        if isinstance(leaf, float):
            assert math.isfinite(leaf), f"{path}: non-finite float"
    return payload


@pytest.fixture(scope="module")
def cascade():
    """One insert + query + erase cascade's worth of report objects."""
    node = p100_nvlink_node(4)
    n = 2000
    keys = unique_keys(n, seed=21)
    values = random_values(n, seed=22)
    table = DistributedHashTable.for_workload(node, keys, 0.85)
    insert_report = table.insert(keys, values, source="host")
    _, _, query_report = table.query(keys, source="host")
    _, erase_report = table.erase(keys[: n // 4], source="host")
    records = list(table.transfer_log.records)
    yield {
        "table": table,
        "insert": insert_report,
        "query": query_report,
        "erase": erase_report,
        "transfers": records,
    }
    table.free()


class TestReportTypes:
    def test_kernel_report(self, cascade):
        report = cascade["insert"].kernel_reports[0]
        payload = _assert_reportable(report)
        assert payload["op"] == "insert"
        assert payload["num_ops"] == report.num_ops
        # the deprecated alias serves the identical payload
        assert report.as_dict() == report.to_dict()

    def test_cascade_report_all_ops(self, cascade):
        for op in ("insert", "query", "erase"):
            payload = _assert_reportable(cascade[op])
            assert payload["op"] == op
            assert payload["kernel_reports"], op
            assert payload["kernel_spans"], op

    def test_transfer_record(self, cascade):
        record = cascade["transfers"][0]
        payload = _assert_reportable(record)
        assert payload["kind"] in {k.name.lower() for k in MemcpyKind}
        assert payload["nbytes"] == record.nbytes

    def test_shard_span(self):
        span = ShardSpan(2, "insert", 0.5, 0.75, pid=1234)
        payload = _assert_reportable(span)
        assert payload["shard"] == 2 and payload["pid"] == 1234
        assert payload["duration"] == pytest.approx(0.25)
        assert span.shifted(-0.5).pid == 1234  # pid survives rebasing

    def test_pipeline_span(self):
        payload = _assert_reportable(Span(0, "kernel", "gpu", 1.0, 2.0))
        assert payload["resource"] == "gpu"

    def test_stream_result(self, cascade):
        table = cascade["table"]
        driver = AsyncCascadeDriver(table, num_threads=2)
        keys = unique_keys(500, seed=23)
        res = driver.query_stream([keys])
        payload = _assert_reportable(res)
        assert payload["num_ops"] == 500
        assert payload["measured_makespan"] is None  # measure=False
        assert payload["spans"]

    def test_wallclock_record(self):
        from repro.bench.wallclock import WallClockRecord

        rec = WallClockRecord(
            bench="single_shard_insert", n=100, m=1,
            engine="serial", ops_per_s=1e6, seconds=1e-4,
        )
        payload = _assert_reportable(rec)
        assert payload["engine"] == "serial" and payload["cpus"] >= 1

    def test_distribution_record(self):
        from repro.bench.distribution import DistributionRecord

        rec = DistributionRecord(
            bench="multisplit", n=100, m=4, path="fused",
            seconds=1e-4, ops_per_s=1e6,
        )
        payload = _assert_reportable(rec)
        assert payload["path"] == "fused"

    def test_racecheck_report(self):
        from repro.sanitize.mutants import run_clean
        from repro.simt.scheduler import RoundRobinScheduler

        report = run_clean(RoundRobinScheduler())
        payload = _assert_reportable(report)
        assert payload["clean"] is True and payload["findings"] == []

    def test_fuzz_case(self):
        from repro.sanitize.fuzz import FuzzCase

        case = FuzzCase.from_seed(5)
        payload = case.to_dict()
        json.dumps(payload)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert FuzzCase.from_dict(payload) == case  # stamp doesn't break replay


class TestToJsonable:
    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float32(1.5)) == 1.5
        assert to_jsonable(np.bool_(True)) is True
        assert to_jsonable(np.arange(3)) == [0, 1, 2]

    def test_nonfinite_floats_become_none(self):
        assert to_jsonable(float("nan")) is None
        assert to_jsonable(float("inf")) is None
        assert to_jsonable(np.float64("nan")) is None

    def test_enum_collapses(self):
        assert to_jsonable(MemcpyKind.H2D) == "host_to_device"

    def test_nested_reportables_recurse(self):
        span = ShardSpan(0, "query", 0.0, 1.0)
        out = to_jsonable({"spans": [span]})
        assert out["spans"][0]["op"] == "query"

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestCascadeAccounting:
    """The bugfix sweep: wall-clock fields populated on every op."""

    @pytest.mark.parametrize("op", ["insert", "query", "erase"])
    def test_distribution_and_kernel_accounting(self, cascade, op):
        report = cascade[op]
        assert report.distribution_wall_seconds > 0.0, op
        assert report.kernel_spans, op
        assert report.kernel_wall_seconds > 0.0, op
        assert all(s.duration >= 0 for s in report.kernel_spans)
