"""TraceRecorder: hierarchical spans, shard-span merging, canonical trees."""

import threading

from repro.exec.metrics import ShardSpan
from repro.obs.trace import MEASURED, MODELLED, TraceRecorder


class TestSpans:
    def test_span_ids_unique_and_parented(self):
        rec = TraceRecorder()
        with rec.span("outer", "cascade") as outer:
            with rec.span("inner", "kernel") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.span_id != inner.span_id
        assert len(rec) == 2
        assert outer.end >= inner.end >= inner.start >= outer.start

    def test_sibling_spans_share_parent(self):
        rec = TraceRecorder()
        with rec.span("phase", "cascade") as parent:
            with rec.span("a", "kernel") as a:
                pass
            with rec.span("b", "kernel") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id
        assert [s.name for s in rec.children(parent.span_id)] == ["a", "b"]

    def test_live_attrs_updatable_inside_block(self):
        rec = TraceRecorder()
        with rec.span("transfer", "transfer") as sp:
            sp.attrs["nbytes"] = 4096
        assert rec.spans[0].attrs["nbytes"] == 4096

    def test_kind_defaults_measured(self):
        rec = TraceRecorder()
        with rec.span("a", "phase"):
            pass
        rec.add_span("b", "phase", 0.0, 1.0, kind=MODELLED)
        kinds = {s.name: s.kind for s in rec.spans}
        assert kinds == {"a": MEASURED, "b": MODELLED}

    def test_parent_stack_is_thread_local(self):
        rec = TraceRecorder()
        seen = {}

        def worker():
            with rec.span("worker-span", "kernel") as sp:
                seen["parent"] = sp.parent_id

        with rec.span("main-span", "cascade"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # the worker thread's stack starts empty: no cross-thread parent
        assert seen["parent"] is None


class TestShardSpanMerge:
    def test_offset_and_parent_applied(self):
        rec = TraceRecorder()
        with rec.span("dispatch", "engine") as sp:
            pass
        merged = rec.record_shard_spans(
            [ShardSpan(0, "insert", 0.0, 0.5), ShardSpan(1, "insert", 0.1, 0.4)],
            offset=2.0,
            parent_id=sp.span_id,
        )
        assert [m.start for m in merged] == [2.0, 2.1]
        assert all(m.parent_id == sp.span_id for m in merged)
        assert merged[0].name == "insert shard 0"
        assert merged[0].attrs == {"shard": 0, "op": "insert"}

    def test_worker_pid_preserved(self):
        rec = TraceRecorder()
        merged = rec.record_shard_spans([ShardSpan(0, "query", 0.0, 1.0, pid=4242)])
        assert merged[0].pid == 4242

    def test_node_level_span_name(self):
        rec = TraceRecorder()
        merged = rec.record_shard_spans([ShardSpan(-1, "insert batch", 0.0, 1.0)])
        assert merged[0].name == "insert batch"


class TestTree:
    def test_tree_ignores_timing_ids_and_pids(self):
        a, b = TraceRecorder(), TraceRecorder()
        for rec, pid in ((a, 100), (b, 200)):
            with rec.span("cascade", "cascade"):
                rec.record_shard_spans(
                    [ShardSpan(0, "insert", 0.0, 1.0, pid=pid)]
                )
        assert a.tree() == b.tree()
        assert a.tree(modulo_pids=False) != b.tree(modulo_pids=False)

    def test_makespan_and_categories(self):
        rec = TraceRecorder()
        rec.add_span("x", "kernel", 0.0, 2.0)
        rec.add_span("y", "transfer", 1.0, 3.0)
        assert rec.makespan == 3.0
        assert rec.categories() == {"kernel", "transfer"}
        assert len(rec.by_category("kernel")) == 1

    def test_to_dict_sorted_and_versioned(self):
        rec = TraceRecorder(trace_id="deadbeef")
        rec.add_span("late", "kernel", 1.0, 2.0)
        rec.add_span("early", "kernel", 0.0, 1.0)
        payload = rec.to_dict()
        assert payload["trace_id"] == "deadbeef"
        assert payload["schema_version"] == 1
        assert [s["name"] for s in payload["spans"]] == ["early", "late"]
