"""MetricsRegistry: report folding, snapshots, thread safety."""

import json
import threading

import numpy as np

from repro.core.report import KernelReport
from repro.memory.transfer import MemcpyKind, TransferRecord
from repro.obs.metrics import MetricsRegistry


def _kernel_report(op="insert", n=8):
    return KernelReport(
        op=op,
        num_ops=n,
        probe_windows=np.ones(n, dtype=np.int64),
        group_size=4,
        load_sectors=n,
        store_sectors=n,
        cas_attempts=2 * n,
        cas_successes=n,
        warp_collectives=n,
        failed=0,
    )


class TestPrimitives:
    def test_counters_accumulate_gauges_overwrite(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.inc("a", 3)
        m.set_gauge("g", 1.0)
        m.set_gauge("g", 7.0)
        assert m.counter("a") == 5 and m.gauge("g") == 7.0

    def test_snapshot_flat_sorted_json(self):
        m = MetricsRegistry()
        m.inc("z.last")
        m.set_gauge("a.first", 0.5)
        snap = m.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["counter.z.last"] == 1 and snap["gauge.a.first"] == 0.5
        json.dumps(snap)

    def test_concurrent_increments_lossless(self):
        m = MetricsRegistry()

        def bump():
            for _ in range(1000):
                m.inc("hits")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("hits") == 4000

    def test_queue_depth_tracks_peak(self):
        m = MetricsRegistry()
        for depth in (3, 9, 2):
            m.observe_queue_depth("batches", depth)
        assert m.gauge("queue.batches.depth") == 2
        assert m.gauge("queue.batches.peak_depth") == 9


class TestObservers:
    def test_observe_kernel(self):
        m = MetricsRegistry()
        m.observe_kernel(_kernel_report())
        m.observe_kernel(_kernel_report())
        assert m.counter("kernel.insert.ops") == 16
        assert m.counter("kernel.insert.cas_retries") == 16
        assert m.gauge("kernel.insert.mean_windows") == 1.0

    def test_observe_transfers(self):
        m = MetricsRegistry()
        m.observe_transfers(
            [
                TransferRecord(MemcpyKind.H2D, 1024, None, 0),
                TransferRecord(MemcpyKind.P2P, 512, 0, 1),
                TransferRecord(MemcpyKind.P2P, 512, 0, 1),
            ]
        )
        assert m.counter("transfer.h2d.bytes") == 1024
        assert m.counter("transfer.p2p.count") == 2
        assert m.counter("transfer.link.0_to_1.bytes") == 1024

    def test_to_dict_versioned(self):
        m = MetricsRegistry()
        m.inc("x")
        payload = m.to_dict()
        assert payload["schema_version"] == 1
        assert payload["metrics"]["counter.x"] == 1

    def test_clear(self):
        m = MetricsRegistry()
        m.inc("x")
        m.set_gauge("y", 1)
        m.clear()
        assert m.snapshot() == {}
