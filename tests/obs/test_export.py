"""Exporters: Perfetto trace_event validity, metrics rows, ASCII rendering."""

import json

from repro.exec.metrics import ShardSpan
from repro.obs.export import (
    metrics_rows,
    render_rows,
    render_trace,
    to_perfetto,
    validate_trace,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder


def _recorder():
    rec = TraceRecorder(trace_id="cafebabe")
    with rec.span("insert cascade", "cascade") as cascade:
        rec.add_span("H2D", "transfer", 0.0, 0.1, parent_id=cascade.span_id)
        rec.add_span("multisplit", "distribution", 0.1, 0.2)
        with rec.span("kernel phase", "kernel"):
            rec.record_shard_spans(
                [ShardSpan(0, "insert", 0.0, 0.05, pid=99),
                 ShardSpan(1, "insert", 0.01, 0.04, pid=99)],
                offset=0.2,
            )
    return rec


class TestPerfetto:
    def test_valid_by_contract(self):
        data = to_perfetto(_recorder())
        assert validate_trace(data) == []

    def test_event_shape(self):
        data = to_perfetto(_recorder())
        events = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert events
        # microsecond timestamps, monotonic in file order
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in events)
        # parent references resolve within the file
        ids = {e["args"]["span_id"] for e in events}
        for e in events:
            parent = e["args"]["parent_id"]
            assert parent is None or parent in ids
        # shard spans land on their own tid, worker pid preserved
        shard_events = [e for e in events if "insert shard" in e["name"]]
        assert {e["tid"] for e in shard_events} == {1, 2}
        assert {e["pid"] for e in shard_events} == {99}

    def test_metadata_and_metrics_attached(self):
        m = MetricsRegistry()
        m.inc("cascade.insert.count")
        data = to_perfetto(_recorder(), m)
        assert data["otherData"]["trace_id"] == "cafebabe"
        assert data["metrics"]["counter.cascade.insert.count"] == 1
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert meta  # one process_name record per pid

    def test_write_and_reload(self, tmp_path):
        path = write_trace(tmp_path / "t.trace.json", _recorder())
        data = json.loads(path.read_text())
        assert validate_trace(data) == []

    def test_validator_flags_problems(self):
        assert validate_trace([]) != []
        assert validate_trace({}) != []
        bad = {
            "traceEvents": [
                {"ph": "Q"},
                {"ph": "X", "name": "", "cat": "", "ts": -1, "dur": "x",
                 "args": {"span_id": 1, "parent_id": 777}},
            ]
        }
        problems = validate_trace(bad)
        assert any("unsupported phase" in p for p in problems)
        assert any("missing name" in p for p in problems)
        assert any("ts=-1" in p for p in problems)
        assert any("parent_id 777 unresolved" in p for p in problems)

    def test_validator_flags_nonmonotonic(self):
        events = [
            {"ph": "X", "name": "b", "cat": "c", "ts": 5.0, "dur": 1.0,
             "args": {"span_id": 1, "parent_id": None}},
            {"ph": "X", "name": "a", "cat": "c", "ts": 1.0, "dur": 1.0,
             "args": {"span_id": 2, "parent_id": None}},
        ]
        problems = validate_trace({"traceEvents": events})
        assert any("not monotonic" in p for p in problems)


class TestMetricsRows:
    def test_bench_json_shape(self, tmp_path):
        m = MetricsRegistry()
        m.inc("cascade.insert.ops", 1000)
        rows = metrics_rows(m, bench="trace", n=1000)
        assert rows == [
            {
                "metric": "counter.cascade.insert.ops",
                "value": 1000,
                "cpus": rows[0]["cpus"],
                "bench": "trace",
                "n": 1000,
            }
        ]
        path = write_metrics(tmp_path / "m.json", m, bench="trace")
        assert json.loads(path.read_text())[0]["metric"].startswith("counter.")


class TestAsciiRender:
    def test_render_rows_scales_marks(self):
        out = render_rows(
            [("gpu0", [(0.0, 0.5, "0")]), ("gpu1", [(0.5, 1.0, "1")])],
            width=12,
        )
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("gpu0 |0")
        assert lines[1].rstrip("|").rstrip().endswith("1")

    def test_render_rows_empty(self):
        assert render_rows([], width=10) == "(empty timeline)"
        assert render_rows(
            [("x", [])], width=10, empty_message="(nothing)"
        ) == "(nothing)"

    def test_render_trace_category_rows(self):
        out = render_trace(_recorder(), width=40)
        lines = out.splitlines()
        labels = [line.split("|")[0].strip() for line in lines]
        # taxonomy order: cascade before transfer/distribution/kernel
        assert labels == ["cascade", "transfer", "distribution", "kernel"]

    def test_legacy_renderers_delegate(self):
        """Timeline.render and MeasuredTimeline.render share the renderer."""
        from repro.exec.metrics import MeasuredTimeline
        from repro.pipeline.timeline import Span, Timeline

        tl = Timeline()
        tl.add(Span(0, "kernel", "vram", 0.0, 1.0))
        out = tl.render(width=20)
        assert "vram" in out and "0" in out

        mt = MeasuredTimeline()
        mt.add(ShardSpan(0, "insert", 0.0, 1.0))
        mt.add(ShardSpan(-1, "insert batch", 0.0, 1.0))
        out = mt.render(width=20)
        assert "gpu0" in out and "node" in out and "=" in out
