"""Tests for AoS/SoA layouts and pair packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import EMPTY_SLOT, MAX_KEY, TOMBSTONE_SLOT
from repro.errors import ConfigurationError
from repro.memory.layout import (
    AoSLayout,
    SoALayout,
    pack_pairs,
    pack_scalar,
    unpack_pairs,
    unpack_scalar,
)

keys_st = st.integers(min_value=0, max_value=MAX_KEY)
vals_st = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestPacking:
    @given(keys_st, vals_st)
    def test_scalar_roundtrip(self, k, v):
        assert unpack_scalar(pack_scalar(k, v)) == (k, v)

    def test_key_in_high_bits(self):
        assert int(pack_scalar(1, 0)) == 1 << 32

    def test_vector_roundtrip(self):
        k = np.array([0, 5, MAX_KEY], dtype=np.uint32)
        v = np.array([1, 2, 3], dtype=np.uint32)
        kk, vv = unpack_pairs(pack_pairs(k, v))
        assert (kk == k).all() and (vv == v).all()

    def test_no_pair_collides_with_sentinels(self):
        """The reserved top keys guarantee this by construction."""
        worst = pack_scalar(MAX_KEY, 0xFFFFFFFF)
        assert worst != EMPTY_SLOT and worst != TOMBSTONE_SLOT
        assert int(worst) < int(TOMBSTONE_SLOT)

    def test_reserved_key_rejected(self):
        with pytest.raises(ConfigurationError):
            pack_scalar(MAX_KEY + 1, 0)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            pack_pairs(np.array([1], dtype=np.uint32), np.array([1, 2], dtype=np.uint32))

    def test_empty_arrays(self):
        out = pack_pairs(np.array([], dtype=np.uint32), np.array([], dtype=np.uint32))
        assert out.size == 0


class TestAoSLayout:
    def test_empty_starts_all_vacant(self):
        layout = AoSLayout.empty(64)
        assert layout.capacity == 64
        assert layout.is_vacant().all()
        assert layout.occupancy() == 0.0
        assert layout.nbytes == 64 * 8

    def test_vacancy_distinguishes_tombstones(self):
        layout = AoSLayout.empty(4)
        layout.slots[1] = TOMBSTONE_SLOT
        layout.slots[2] = pack_scalar(7, 8)
        assert layout.is_vacant().tolist() == [True, True, False, True]
        assert layout.is_empty().tolist() == [True, False, False, True]

    def test_stored_pairs(self):
        layout = AoSLayout.empty(4)
        layout.slots[2] = pack_scalar(7, 8)
        k, v = layout.stored_pairs()
        assert k.tolist() == [7] and v.tolist() == [8]

    def test_clear(self):
        layout = AoSLayout.empty(4)
        layout.slots[0] = pack_scalar(1, 1)
        layout.clear()
        assert layout.occupancy() == 0.0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            AoSLayout.empty(0)


class TestSoALayout:
    def test_same_footprint_as_aos(self):
        assert SoALayout.empty(100).nbytes == AoSLayout.empty(100).nbytes

    def test_vacancy(self):
        layout = SoALayout.empty(4)
        layout.keys[0] = 7
        layout.keys[1] = SoALayout.TOMBSTONE_KEY
        assert layout.is_vacant().tolist() == [False, True, True, True]
        assert layout.occupancy() == 0.25

    def test_query_transactions_double_for_small_windows(self):
        """Fig. 1: separated key/value arrays cost two transactions where
        AoS needs one."""
        layout = SoALayout.empty(16)
        from repro.simt.counters import sectors_for_access

        for g in (1, 2, 4):
            assert layout.query_transactions(1, g) == 2 * sectors_for_access(0, g * 8)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SoALayout.empty(0)
