"""Tests for host/device buffers and VRAM accounting."""

import numpy as np
import pytest

from repro.errors import AllocationError, ConfigurationError, DeviceError
from repro.memory.buffer import DeviceBuffer, HostBuffer
from repro.perfmodel.specs import P100
from repro.simt.device import Device, GPUSpec


class TestHostBuffer:
    def test_empty_and_zeros(self):
        assert len(HostBuffer.empty(10)) == 10
        assert (HostBuffer.zeros(5).array == 0).all()

    def test_nbytes(self):
        assert HostBuffer.empty(4, dtype=np.uint64).nbytes == 32

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            HostBuffer.empty(-1)

    def test_wraps_contiguously(self):
        arr = np.arange(10)[::2]  # non-contiguous view
        buf = HostBuffer(arr)
        assert buf.array.flags["C_CONTIGUOUS"]


class TestDeviceBuffer:
    def test_registers_vram(self, p100_device):
        buf = DeviceBuffer.zeros(p100_device, 1000, dtype=np.uint64)
        assert p100_device.allocated_bytes == 8000
        buf.free()
        assert p100_device.allocated_bytes == 0
        assert buf.freed

    def test_double_free_is_idempotent(self, p100_device):
        buf = DeviceBuffer.zeros(p100_device, 10)
        buf.free()
        buf.free()
        assert p100_device.allocated_bytes == 0

    def test_use_after_free_rejected(self, p100_device):
        buf = DeviceBuffer.zeros(p100_device, 10)
        buf.free()
        with pytest.raises(DeviceError):
            buf.require_live()

    def test_oversized_allocation_fails(self):
        tiny = Device(0, GPUSpec(name="tiny", vram_bytes=64, mem_bandwidth=1e9))
        with pytest.raises(AllocationError):
            DeviceBuffer.zeros(tiny, 100, dtype=np.uint64)

    def test_full_fill_value(self, p100_device):
        buf = DeviceBuffer.full(p100_device, 5, 7, dtype=np.uint64)
        assert (buf.array == 7).all()

    def test_from_array_takes_footprint(self, p100_device):
        arr = np.arange(16, dtype=np.uint32)
        buf = DeviceBuffer.from_array(p100_device, arr)
        assert p100_device.allocated_bytes == 64
        assert (buf.array == arr).all()

    def test_many_tables_exhaust_vram(self):
        """A card fits two ~40% tables but not three (proportional to the
        P100 16 GB / ~7 GB table scenario, scaled down to stay cheap)."""
        spec = GPUSpec(name="mini-p100", vram_bytes=16 * 1024, mem_bandwidth=1e9)
        dev = Device(0, spec)
        slots = (7 * 1024) // 8
        bufs = [DeviceBuffer.empty(dev, slots) for _ in range(2)]
        with pytest.raises(AllocationError):
            DeviceBuffer.empty(dev, slots)
        for b in bufs:
            b.free()
