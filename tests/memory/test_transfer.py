"""Tests for memcpy accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memory.buffer import DeviceBuffer, HostBuffer
from repro.memory.transfer import MemcpyKind, TransferLog, memcpy
from repro.perfmodel.specs import P100
from repro.simt.device import Device


@pytest.fixture
def devices():
    return Device(0, P100), Device(1, P100)


class TestKindInference:
    def test_h2d(self, devices):
        host = HostBuffer(np.arange(8, dtype=np.uint64))
        dev = DeviceBuffer.zeros(devices[0], 8)
        rec = memcpy(dev, host)
        assert rec.kind is MemcpyKind.H2D
        assert rec.src_device is None and rec.dst_device == 0
        assert (dev.array == host.array).all()

    def test_d2h(self, devices):
        dev = DeviceBuffer.from_array(devices[0], np.arange(4, dtype=np.uint64))
        host = HostBuffer.zeros(4)
        assert memcpy(host, dev).kind is MemcpyKind.D2H
        assert (host.array == dev.array).all()

    def test_d2d_same_gpu(self, devices):
        a = DeviceBuffer.from_array(devices[0], np.arange(4, dtype=np.uint64))
        b = DeviceBuffer.zeros(devices[0], 4)
        assert memcpy(b, a).kind is MemcpyKind.D2D

    def test_p2p_across_gpus(self, devices):
        a = DeviceBuffer.from_array(devices[0], np.arange(4, dtype=np.uint64))
        b = DeviceBuffer.zeros(devices[1], 4)
        rec = memcpy(b, a)
        assert rec.kind is MemcpyKind.P2P
        assert rec.src_device == 0 and rec.dst_device == 1

    def test_host_to_host_rejected(self):
        a, b = HostBuffer.zeros(4), HostBuffer.zeros(4)
        with pytest.raises(ConfigurationError):
            memcpy(a, b)


class TestWindows:
    def test_partial_copy_with_offsets(self, devices):
        src = HostBuffer(np.arange(10, dtype=np.uint64))
        dst = DeviceBuffer.zeros(devices[0], 10)
        rec = memcpy(dst, src, count=3, src_offset=2, dst_offset=5)
        assert dst.array[5:8].tolist() == [2, 3, 4]
        assert rec.nbytes == 24

    def test_out_of_range_rejected(self, devices):
        src = HostBuffer.zeros(4)
        dst = DeviceBuffer.zeros(devices[0], 4)
        with pytest.raises(ConfigurationError):
            memcpy(dst, src, count=5)

    def test_dtype_mismatch_rejected(self, devices):
        src = HostBuffer(np.zeros(4, dtype=np.uint32))
        dst = DeviceBuffer.zeros(devices[0], 4, dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            memcpy(dst, src)

    def test_freed_buffer_rejected(self, devices):
        src = HostBuffer.zeros(4)
        dst = DeviceBuffer.zeros(devices[0], 4)
        dst.free()
        with pytest.raises(Exception):
            memcpy(dst, src)


class TestTransferLog:
    def test_bytes_by_kind(self, devices):
        log = TransferLog()
        host = HostBuffer(np.arange(8, dtype=np.uint64))
        dev = DeviceBuffer.zeros(devices[0], 8)
        memcpy(dev, host, log=log)
        memcpy(host, dev, log=log)
        by_kind = log.bytes_by_kind()
        assert by_kind[MemcpyKind.H2D] == 64
        assert by_kind[MemcpyKind.D2H] == 64
        assert log.total_bytes() == 128
        assert log.total_bytes(MemcpyKind.H2D) == 64

    def test_p2p_matrix(self, devices):
        log = TransferLog()
        a = DeviceBuffer.from_array(devices[0], np.arange(4, dtype=np.uint64))
        b = DeviceBuffer.zeros(devices[1], 4)
        memcpy(b, a, log=log)
        mat = log.p2p_matrix(2)
        assert mat[0, 1] == 32 and mat[1, 0] == 0

    def test_clear_and_len(self, devices):
        log = TransferLog()
        host = HostBuffer.zeros(2)
        dev = DeviceBuffer.zeros(devices[0], 2)
        memcpy(dev, host, log=log)
        assert len(log) == 1
        log.clear()
        assert len(log) == 0
