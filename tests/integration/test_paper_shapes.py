"""Integration tests asserting the paper's qualitative result shapes.

These are the acceptance criteria from DESIGN.md §4: who wins, by
roughly what factor, and where the crossovers fall.  They run the real
experiment harness at a reduced (but statistically meaningful) size.
"""

import math

import numpy as np
import pytest

from repro.bench import (
    run_bandwidths,
    run_capacity_sweep,
    run_overlap,
    run_scaling,
    run_single_gpu_sweep,
    run_speedup_table,
)

N = 1 << 14


@pytest.fixture(scope="module")
def fig7():
    return run_single_gpu_sweep(
        n=N, loads=(0.5, 0.8, 0.95), group_sizes=(1, 2, 4, 8, 16, 32), seed=42
    )


class TestFig7Shapes:
    def test_optimal_group_in_paper_range(self, fig7):
        """'optimal performance is achieved with |g| ∈ {2, 4, 8}'."""
        for i in range(len(fig7.loads)):
            for op in ("insert", "retrieve"):
                best = fig7.best_group(i, op=op)
                assert best in ("WD|g|=2", "WD|g|=4", "WD|g|=8"), (i, op, best)

    def test_g1_collapses_at_high_load(self, fig7):
        """The naive one-thread-per-pair path loses badly at α = 0.95."""
        i = fig7.loads.index(0.95)
        g1 = fig7.insert_rates["WD|g|=1"][i]
        best = max(fig7.insert_rates[f"WD|g|={g}"][i] for g in (2, 4, 8))
        assert best > 1.8 * g1

    def test_g1_competitive_at_moderate_load(self, fig7):
        """'Unlike on previous architectures this approach is competitive
        to CUDPP on a Tesla P100 for reasonable loads.'"""
        i = fig7.loads.index(0.5)
        assert fig7.insert_rates["WD|g|=1"][i] > 0.7 * fig7.insert_rates["CUDPP"][i]

    def test_rates_decrease_with_load(self, fig7):
        for label, series in fig7.insert_rates.items():
            vals = [v for v in series if not math.isnan(v)]
            assert vals[0] > vals[-1], label

    def test_retrieval_faster_than_insertion(self, fig7):
        for label in fig7.insert_rates:
            for i in range(len(fig7.loads)):
                ins = fig7.insert_rates[label][i]
                ret = fig7.retrieve_rates[label][i]
                if not (math.isnan(ins) or math.isnan(ret)):
                    assert ret > ins

    def test_headline_insert_rate(self, fig7):
        """'1.4 billion insertions per second ... for a load factor of
        0.95' — within 20%."""
        i = fig7.loads.index(0.95)
        best = max(fig7.insert_rates[f"WD|g|={g}"][i] for g in (2, 4, 8))
        assert best == pytest.approx(1.4e9, rel=0.2)

    def test_retrieval_rate_range(self, fig7):
        """Conclusion: device-sided retrieval ≈ (3.5 − 5.5)·10^9 ops/s."""
        i = fig7.loads.index(0.95)
        best = max(fig7.retrieve_rates[f"WD|g|={g}"][i] for g in (2, 4, 8))
        assert 2.8e9 < best < 6.5e9


class TestSpeedupShapes:
    @pytest.fixture(scope="class")
    def table(self):
        return run_speedup_table(n=N, loads=(0.8, 0.9, 0.95))

    def test_insert_speedups_track_paper(self, table):
        """Paper: 1.79 / 2.18 / 2.84 — ours within ±35% and increasing."""
        for ours, paper in zip(table.insert_speedups, table.paper_insert):
            assert ours == pytest.approx(paper, rel=0.35)
        assert table.insert_speedups == sorted(table.insert_speedups)

    def test_headline_speedup(self, table):
        """'outperforming ... CUDPP ... by a factor of 2.8 on a P100' at
        α = 0.95 — we accept 2.2+."""
        assert table.insert_speedups[-1] > 2.2

    def test_retrieve_speedups_modest(self, table):
        """Paper: ~1.3x throughout — ours in [1.0, 1.7]."""
        for ours in table.retrieve_speedups:
            assert 1.0 <= ours <= 1.7


class TestFig9Shapes:
    @pytest.fixture(scope="class")
    def scaling(self):
        return run_scaling(n_sim=1 << 13, paper_exponents=(28, 29))

    def test_efficiency_drop_then_flat(self, scaling):
        """'Both the strong and weak scaling efficiency remain constant
        for m ≥ 2' with a drop from m = 1."""
        for label, effs in scaling.weak.items():
            assert effs[0] == pytest.approx(1.0)
            assert effs[1] < 0.95  # the multisplit+comm drop
            # flat afterwards: within 20% of each other
            tail = effs[1:]
            assert max(tail) - min(tail) < 0.2 * max(tail), label

    def test_insert_2_29_superlinear_relative_to_2_28(self, scaling):
        """The CAS-degradation artifact makes the bigger problem scale
        *better* (the paper's super-linear strong-scaling point)."""
        e28 = scaling.strong["Insert 2^28"]
        e29 = scaling.strong["Insert 2^29"]
        assert e29[-1] > e28[-1]

    def test_insert_scales_better_than_retrieve(self, scaling):
        """Retrieval pays the reverse transposition too."""
        assert scaling.strong["Insert 2^28"][1] > scaling.strong["Retrieve 2^28"][1]


class TestFig10Shapes:
    @pytest.fixture(scope="class")
    def cap(self):
        return run_capacity_sweep(
            paper_exponents=(28, 30, 31, 32),
            distributions=("unique",),
            n_sim=1 << 13,
        )

    def test_insertion_drops_past_2_30(self, cap):
        """'device-sided insertion performance drops by up to a factor of
        two for n > 2^30'."""
        series = cap.device_insert["unique"]
        assert series[-1] < 0.85 * series[0]
        assert series[-1] > 0.35 * series[0]

    def test_retrieval_stays_flat(self, cap):
        """'Query performance remains constantly high.'"""
        series = cap.device_retrieve["unique"]
        assert max(series) / min(series) < 1.35

    def test_host_insert_faster_than_host_retrieve(self, cap):
        """'Host-sided insertions are faster than queries.'"""
        ins = cap.host_insert["unique"]
        ret = cap.host_retrieve["unique"]
        assert ins[0] > ret[0] * 0.95  # at small capacity, at least parity

    def test_device_faster_than_host(self, cap):
        for i in range(len(cap.paper_ns)):
            assert cap.device_insert["unique"][i] > cap.host_insert["unique"][i]


class TestFig11Shapes:
    @pytest.fixture(scope="class")
    def overlap(self):
        return run_overlap(num_batches=12, batch_sim=1 << 12)

    def test_insert_reduction_near_paper(self, overlap):
        """'reduced by up to 36% for insertion' — we accept 25-50%."""
        red = dict(zip(overlap.labels, overlap.reductions))
        assert 0.25 < max(red["Ins2"], red["Ins4"]) < 0.50

    def test_retrieve_reduction_near_paper(self, overlap):
        """'and 45% for querying' — we accept 35-55%."""
        red = dict(zip(overlap.labels, overlap.reductions))
        assert 0.35 < max(red["Ret2"], red["Ret4"]) < 0.55

    def test_more_threads_never_hurt(self, overlap):
        spans = dict(zip(overlap.labels, overlap.makespans))
        assert spans["Ins4"] <= spans["Ins2"] <= spans["Ins1"]
        assert spans["Ret4"] <= spans["Ret2"] <= spans["Ret1"]


class TestBandwidthAnchors:
    def test_paper_bandwidth_numbers(self):
        res = run_bandwidths(n_sim=1 << 13, num_batches=12)
        assert res.multisplit_accumulated == pytest.approx(210e9, rel=0.12)
        assert res.alltoall_accumulated == pytest.approx(192e9, rel=0.12)
        # '84%/55% of the theoretically achievable PCIe bandwidth' — the
        # insert fraction; pipeline fill/drain keeps us a little under
        assert 0.55 < res.host_insert_pcie_fraction < 0.95
