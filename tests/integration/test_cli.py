"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 100_000
        args = build_parser().parse_args(["rates", "--loads", "0.5"])
        assert args.loads == [0.5]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tesla P100" in out
        assert "calibration" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "5000"]) == 0
        out = capsys.readouterr().out
        assert "demo OK" in out
        assert "G inserts/s" in out

    def test_rates(self, capsys):
        assert main(["rates", "--n", "2048", "--loads", "0.5", "--groups", "4"]) == 0
        out = capsys.readouterr().out
        assert "INSERTION" in out and "WD|g|=4" in out

    def test_rates_zipf(self, capsys):
        assert (
            main(
                ["rates", "--n", "2048", "--loads", "0.8", "--groups", "2",
                 "--distribution", "zipf"]
            )
            == 0
        )
        assert "zipf" in capsys.readouterr().out

    def test_figures_quick(self, capsys):
        """The quick figure regeneration runs end to end from the CLI."""
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for marker in ("Fig. 7", "Fig. 9", "Fig. 11", "A1", "A4"):
            assert marker in out

    def test_bench_smoke_distribution(self, capsys, tmp_path):
        out_path = tmp_path / "dist.json"
        assert (
            main(
                ["bench", "--smoke", "--suite", "distribution",
                 "--out", str(out_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "distribution total speedup" in out
        assert "vs reference" in out
        assert out_path.exists() and '"cpus"' in out_path.read_text()

    def test_bench_suite_choices(self):
        args = build_parser().parse_args(["bench", "--smoke"])
        assert args.suite == "all"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--suite", "warp"])
