"""Smoke tests: every shipped example must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "kmer_index.py", "multi_gpu_scaling.py", "zipf_wordcount.py", "extensions_tour.py"],
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


def test_paper_figures_quick():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "paper_figures.py")],
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    for marker in ("Fig. 7", "Fig. 9", "Fig. 10", "Fig. 11", "A1", "A4"):
        assert marker in out, f"missing {marker} in paper_figures output"
