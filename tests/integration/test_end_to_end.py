"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import WarpDriveHashTable
from repro.baselines import CudppCuckooTable, FolkloreCpuMap, RobinHoodTable, StadiumHashTable
from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.perfmodel import time_cascade
from repro.pipeline import insert_stages, overlap_improvement
from repro.workloads import (
    BatchStream,
    extract_kmers,
    random_dna,
    random_values,
    unique_keys,
    zipf_keys,
)


class TestAllTablesAgree:
    """Every implementation must produce identical query answers on the
    same workload — they differ only in *how* they store it."""

    def test_cross_implementation_agreement(self):
        n = 1 << 12
        keys = unique_keys(n, seed=1)
        values = random_values(n, seed=2)
        pool = unique_keys(4 * n, seed=3)
        absent = pool[~np.isin(pool, keys)][:500]
        probe = np.concatenate([keys[: n // 2], absent])

        tables = [
            WarpDriveHashTable.for_load_factor(n, 0.9, group_size=4),
            CudppCuckooTable.for_load_factor(n, 0.9, seed=4),
            RobinHoodTable.for_load_factor(n, 0.9, seed=5),
            StadiumHashTable.for_load_factor(n, 0.9, seed=6),
            FolkloreCpuMap.for_load_factor(n, 0.9, seed=7),
        ]
        answers = []
        for t in tables:
            t.insert(keys, values)
            got, found = t.query(probe, default=0)
            answers.append((got, found))
        ref_got, ref_found = answers[0]
        for got, found in answers[1:]:
            assert (found == ref_found).all()
            assert (got == ref_got).all()

    def test_distributed_agrees_with_single(self):
        n = 1 << 12
        keys = unique_keys(n, seed=8)
        values = random_values(n, seed=9)
        single = WarpDriveHashTable.for_load_factor(n, 0.9)
        single.insert(keys, values)
        node = p100_nvlink_node(4)
        dist = DistributedHashTable.for_load_factor(node, n, 0.9)
        dist.insert(keys, values)
        probe = keys[::3]
        sv, sf = single.query(probe)
        dv, df, _ = dist.query(probe)
        assert (sf == df).all() and (sv == dv).all()


class TestStreamingLifecycle:
    def test_batched_build_query_erase_rebuild(self):
        """A realistic multi-batch lifecycle on the distributed table."""
        node = p100_nvlink_node(4)
        stream = BatchStream(total=8000, batch_size=2000, seed=10)
        table = DistributedHashTable.for_load_factor(node, 8000, 0.85)
        for batch in stream:
            table.insert(batch.keys, batch.values)
        assert len(table) == 8000

        # all batches retrievable
        for batch in stream:
            got, found, _ = table.query(batch.keys)
            assert found.all() and (got == batch.values).all()

        # shard-level erase + reinsert through the shards' own API
        b0 = stream.batch(0)
        for shard in table.shards:
            pass  # erasure is a shard-level (barrier) operation
        # overwrite batch 0 with new values (update path)
        table.insert(b0.keys, (b0.values + 1).astype(np.uint32))
        got, found, _ = table.query(b0.keys)
        assert (got == b0.values + 1).all()
        assert len(table) == 8000  # updates did not grow it

    def test_kmer_pipeline(self):
        """DNA → k-mers → distributed counting index → queries."""
        genome = random_dna(20_000, seed=11)
        kmers = extract_kmers(genome, 10)
        uniq, counts = np.unique(kmers, return_counts=True)
        node = p100_nvlink_node(2)
        index = DistributedHashTable.for_load_factor(node, uniq.size, 0.8)
        index.insert(uniq, counts.astype(np.uint32), source="device")
        got, found, _ = index.query(uniq[:100], source="device")
        assert found.all()
        assert (got == counts[:100]).all()


class TestSkewedWorkloads:
    def test_zipf_stream_end_to_end(self):
        keys = zipf_keys(1 << 14, s=1.0 + 1e-6, universe=1 << 12, seed=12)
        uniq = np.unique(keys)
        t = WarpDriveHashTable.for_load_factor(uniq.size, 0.95, group_size=2)
        t.insert(keys, np.arange(keys.size, dtype=np.uint32))
        assert len(t) == uniq.size
        _, found = t.query(uniq)
        assert found.all()

    def test_zipf_probe_costs_comparable_to_unique(self):
        """Fig. 8's observation: at equal *occupancy*, Zipf behaves like
        unique keys (duplicates just update)."""
        n = 1 << 13
        zk = zipf_keys(n, s=1.0 + 1e-6, universe=n, seed=13)
        uniq_count = np.unique(zk).size
        tz = WarpDriveHashTable.for_load_factor(uniq_count, 0.9, group_size=4)
        rz = tz.insert(zk, np.zeros(n, dtype=np.uint32))
        uk = unique_keys(uniq_count, seed=14)
        tu = WarpDriveHashTable.for_load_factor(uniq_count, 0.9, group_size=4)
        ru = tu.insert(uk, np.zeros(uniq_count, dtype=np.uint32))
        # updates resolve in early windows, so the Zipf stream probes
        # somewhat *less* per operation — same ballpark, never more
        assert rz.mean_windows <= ru.mean_windows * 1.1
        assert rz.mean_windows >= ru.mean_windows * 0.5


class TestModelledPipelines:
    def test_full_overlap_pipeline_from_real_cascades(self):
        node = p100_nvlink_node(4)
        table = DistributedHashTable.for_load_factor(node, 8 * 1024, 0.9)
        pool = unique_keys(8 * 1024, seed=15)
        stage_lists = []
        for b in range(8):
            keys = pool[b * 1024 : (b + 1) * 1024]
            rep = table.insert(keys, keys, source="host")
            stage_lists.append(insert_stages(time_cascade(rep, table, node)))
        seq, ov, reduction = overlap_improvement(stage_lists, 4)
        assert 0.0 < reduction < 0.8
        ov.verify_no_overlap()
        ov.verify_batch_order()

    def test_vram_exhaustion_surfaces(self):
        """Oversized tables must fail like the real 16 GB card would."""
        from repro.errors import AllocationError
        from repro.perfmodel.specs import P100
        from repro.simt.device import Device, GPUSpec

        small = GPUSpec(name="tiny", vram_bytes=1 << 16, mem_bandwidth=1e9)
        dev = Device(0, small)
        with pytest.raises(AllocationError):
            WarpDriveHashTable(20_000, device=dev)  # 160 KB > 64 KB
