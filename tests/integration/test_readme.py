"""The README's code blocks must actually run."""

import pathlib
import re

import numpy as np
import pytest

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"


def test_readme_exists_and_mentions_the_paper():
    text = README.read_text()
    assert "WarpDrive" in text
    assert "IPDPS 2018" in text or "IPPS" in text


def test_readme_python_blocks_execute():
    """Run every ```python block in README.md in one shared namespace."""
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README should contain python examples"
    namespace: dict = {"np": np}
    for block in blocks:
        exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102
    # the quickstart block left a populated table behind
    assert "table" in namespace
    assert len(namespace["table"]) > 0


def test_readme_commands_reference_real_files():
    text = README.read_text()
    root = README.parent
    for match in re.findall(r"python (examples/\w+\.py)", text):
        assert (root / match).exists(), match
