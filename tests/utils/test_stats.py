"""Tests for statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    Summary,
    cdf_points,
    geometric_mean,
    harmonic_mean,
    summarize,
)


class TestSummarize:
    def test_constant_sample(self):
        s = summarize(np.full(100, 5.0))
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.minimum == s.maximum == s.p50 == 5.0
        assert s.count == 100

    def test_empty_sample(self):
        s = summarize(np.empty(0))
        assert s.count == 0
        assert s.mean == 0.0

    def test_percentile_ordering(self):
        s = summarize(np.arange(1000, dtype=float))
        assert s.minimum <= s.p50 <= s.p95 <= s.p99 <= s.maximum

    def test_as_dict_keys(self):
        d = summarize(np.arange(5.0)).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "p50", "p95", "p99", "max"}

    def test_accepts_integer_input(self):
        s = summarize(np.array([1, 2, 3]))
        assert s.mean == pytest.approx(2.0)


class TestMeans:
    def test_geometric_mean_of_reciprocals_is_one(self):
        vals = np.array([2.0, 0.5, 4.0, 0.25])
        assert geometric_mean(vals) == pytest.approx(1.0)

    def test_harmonic_mean_of_rates(self):
        # classic: half distance at 30, half at 60 -> 40
        assert harmonic_mean(np.array([30.0, 60.0])) == pytest.approx(40.0)

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean(np.array([1.0, 0.0]))

    def test_harmonic_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean(np.array([]))

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=20)
    )
    def test_mean_inequality(self, values):
        arr = np.array(values)
        # harmonic <= geometric <= arithmetic
        assert harmonic_mean(arr) <= geometric_mean(arr) + 1e-9
        assert geometric_mean(arr) <= float(arr.mean()) + 1e-9


class TestCdf:
    def test_cdf_monotone(self):
        xs, fs = cdf_points(np.array([3.0, 1.0, 2.0]))
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert fs.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_empty(self):
        xs, fs = cdf_points(np.array([]))
        assert xs.size == fs.size == 0
