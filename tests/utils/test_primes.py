"""Tests for prime helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.primes import is_prime, next_prime

SMALL_PRIMES = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}


class TestIsPrime:
    def test_small_numbers(self):
        for n in range(50):
            assert is_prime(n) == (n in SMALL_PRIMES)

    def test_known_large_prime(self):
        assert is_prime(2_147_483_647)  # Mersenne prime 2^31 - 1

    def test_known_large_composite(self):
        assert not is_prime(2_147_483_647 * 3)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that fool naive tests
        for n in (561, 1105, 1729, 41041, 825265):
            assert not is_prime(n)

    def test_squares_of_primes(self):
        for p in (101, 1009, 65537):
            assert not is_prime(p * p)


class TestNextPrime:
    def test_fixed_points(self):
        for p in (2, 3, 5, 101, 65537):
            assert next_prime(p) == p

    def test_rounds_up(self):
        assert next_prime(4) == 5
        assert next_prime(90) == 97
        assert next_prime(1 << 20) == 1048583

    def test_below_two(self):
        assert next_prime(0) == 2
        assert next_prime(-5) == 2

    def test_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            next_prime(1 << 63)

    @given(st.integers(min_value=2, max_value=1 << 24))
    def test_result_is_prime_and_gap_small(self, n):
        p = next_prime(n)
        assert p >= n
        assert is_prime(p)
        # Bertrand: there is a prime below 2n
        assert p < 2 * n
