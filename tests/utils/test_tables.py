"""Tests for the ASCII report renderer."""

import pytest

from repro.utils.tables import format_kv, format_series, format_table, sparkline


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        # all rows same width
        assert len({len(l) for l in lines}) == 1

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="TITLE")
        assert out.splitlines()[0] == "TITLE"

    def test_float_rounding(self):
        out = format_table(["v"], [[1.23456]], ndigits=2)
        assert "1.23" in out and "1.2345" not in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_bool_cells(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out


class TestFormatSeries:
    def test_series_contains_points(self):
        out = format_series("s", [1, 2], [10.0, 20.0], x_label="n", y_label="r")
        assert "s" in out and "10.000" in out and "n" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])


class TestFormatKv:
    def test_alignment(self):
        out = format_kv({"a": 1, "longer": 2.0})
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv({}) == ""
        assert format_kv({}, title="t") == "t"


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline(list(range(10)))) == 10
