"""Audit of the pytest marker configuration and test-time budget.

Tier-1 is ``pytest -q`` with ``-m 'not slow and not fuzz'``: anything
expensive must carry the (registered) ``slow`` marker, differential
fuzz runs must carry ``fuzz``, and the hypothesis property tests that
guard the fused distribution path must keep their example counts small
enough to stay inside the tier-1 budget.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TESTS = REPO_ROOT / "tests"

MAX_EXAMPLES_BUDGET = 100


def _pyproject() -> str:
    return (REPO_ROOT / "pyproject.toml").read_text()


class TestMarkerConfig:
    def test_slow_marker_registered(self):
        assert re.search(r'"slow:.*"', _pyproject())

    def test_fuzz_marker_registered(self):
        assert re.search(r'"fuzz:.*"', _pyproject())

    def test_tier1_deselects_slow_and_fuzz(self):
        assert "-m 'not slow and not fuzz'" in _pyproject()

    def test_fuzz_directory_is_fuzz_marked(self):
        """Everything under tests/fuzz/ opts out of tier-1 via the marker."""
        fuzz_tests = list((TESTS / "fuzz").glob("test_*.py"))
        assert fuzz_tests
        for path in fuzz_tests:
            assert re.search(
                r"pytestmark\s*=\s*pytest\.mark\.fuzz", path.read_text()
            ), f"{path.name}: missing `pytestmark = pytest.mark.fuzz`"

    def test_mutant_and_harness_runs_stay_out_of_tier1_paths(self):
        """The sanitizer's own tier-1 tests are cheap unit runs; the
        expensive differential campaigns live behind the fuzz marker."""
        match = re.search(r"testpaths\s*=\s*\[([^\]]*)\]", _pyproject())
        assert match is not None
        assert "tests" in match.group(1)  # tests/fuzz deselected by marker

    def test_benchmarks_outside_tier1_paths(self):
        """The 2^18 measurement lives in benchmarks/, not testpaths."""
        match = re.search(r"testpaths\s*=\s*\[([^\]]*)\]", _pyproject())
        assert match and "benchmarks" not in match.group(1)
        assert (REPO_ROOT / "benchmarks" / "bench_distribution.py").exists()

    def test_slow_marks_use_registered_name(self):
        """Every pytest.mark.<name> in tests/ is a registered marker."""
        registered = set(
            re.findall(r'"(\w+):', _pyproject())
        ) | {"parametrize", "skip", "skipif", "xfail", "usefixtures", "filterwarnings"}
        for path in TESTS.rglob("test_*.py"):
            for mark in re.findall(r"pytest\.mark\.(\w+)", path.read_text()):
                assert mark in registered, f"{path.name}: unregistered mark {mark}"


class TestObsTree:
    """The observability suite stays inside the tier-1 budget."""

    EXPECTED = {
        "test_reportable.py",
        "test_trace.py",
        "test_metrics.py",
        "test_export.py",
        "test_runtime.py",
        "test_options.py",
        "test_cli_trace.py",
    }

    def test_obs_tree_covers_every_layer(self):
        """One test module per obs layer: protocol, trace, metrics,
        exporters, runtime hooks, option shims, CLI."""
        present = {p.name for p in (TESTS / "obs").glob("test_*.py")}
        assert self.EXPECTED <= present

    def test_process_backend_equivalence_is_slow_marked(self):
        """Worker-pool spin-up is the one expensive obs test; it must
        carry the registered `slow` marker to stay out of tier-1."""
        text = (TESTS / "obs" / "test_runtime.py").read_text()
        match = re.search(
            r"@pytest\.mark\.slow\s*\n\s*def (\w*process\w*)", text
        )
        assert match, "process-backend equivalence test must be slow-marked"

    def test_obs_tests_avoid_global_obs_leakage(self):
        """obs state is process-global: tests must scope it through
        `obs.session()` / `configure(...)` teardown, never leave it on."""
        for path in (TESTS / "obs").glob("test_*.py"):
            text = path.read_text()
            for m in re.finditer(r"configure\(enabled=True\)", text):
                # every enable has a matching disable in the same file
                assert "configure(enabled=False" in text, path.name


class TestGrowthTree:
    """The lifecycle (grow/rehash) suite stays wired into the gates."""

    EXPECTED = {
        "core/test_store.py",
        "core/test_growth.py",
        "core/test_growth_equivalence.py",
        "multigpu/test_distributed_growth.py",
    }

    def test_growth_tree_exists_and_non_empty(self):
        """One module per lifecycle layer: storage policy, single-table
        growth, growth equivalence properties, coordinated shard growth."""
        for name in self.EXPECTED:
            path = TESTS / name
            assert path.exists() and path.stat().st_size > 0, name

    def test_coverage_floor_requires_growth_tree(self):
        """tools/coverage_floor.py refuses to gate without these files,
        so a rename can't silently drop the lifecycle coverage."""
        text = (REPO_ROOT / "tools" / "coverage_floor.py").read_text()
        assert "tests/core/test_growth*.py" in text
        assert "tests/multigpu/test_distributed_growth*.py" in text

    def test_process_engine_growth_is_slow_marked(self):
        """Worker-pool growth runs spin up process pools; they must
        carry the registered `slow` marker to stay out of tier-1."""
        for name in ("core/test_growth.py", "core/test_growth_equivalence.py"):
            text = (TESTS / name).read_text()
            match = re.search(
                r"@pytest\.mark\.slow\s*\n\s*def (\w*process\w*)", text
            )
            assert match, f"{name}: process-engine growth test must be slow-marked"

    def test_growth_property_tests_use_shared_profiles(self):
        text = (TESTS / "core" / "test_growth_equivalence.py").read_text()
        assert "from profiles import examples" in text
        assert "settings(max_examples" not in text

    def test_ci_runs_grow_smoke(self):
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert "make grow-smoke" in ci
        assert "grow-smoke:" in (REPO_ROOT / "Makefile").read_text()


class TestCompiledTree:
    """The compiled-backend suite stays wired into every gate."""

    EXPECTED = {
        "core/test_compiled_kernels.py",
        "core/test_compiled_fallback.py",
        "exec/test_compiled_equivalence.py",
        "multigpu/test_plan.py",
    }

    def test_compiled_tree_exists_and_non_empty(self):
        """One module per layer: kernel bit-identity, no-provider
        fallback, three-way engine equivalence, cascade plan compiler."""
        for name in self.EXPECTED:
            path = TESTS / name
            assert path.exists() and path.stat().st_size > 0, name

    def test_coverage_floor_requires_compiled_tree(self):
        """tools/coverage_floor.py refuses to gate without these files,
        so a rename can't silently drop the compiled-path coverage."""
        text = (REPO_ROOT / "tools" / "coverage_floor.py").read_text()
        assert "tests/core/test_compiled_kernels*.py" in text
        assert "tests/core/test_compiled_fallback*.py" in text
        assert "tests/exec/test_compiled_equivalence*.py" in text

    def test_numba_leg_is_import_gated(self):
        """The numba-provider tests must skip cleanly where the optional
        dependency is absent (the default CI leg stays numba-free)."""
        text = (TESTS / "exec" / "test_compiled_equivalence.py").read_text()
        assert 'pytest.importorskip("numba")' in text

    def test_process_engine_equivalence_is_slow_marked(self):
        text = (TESTS / "exec" / "test_compiled_equivalence.py").read_text()
        match = re.search(
            r"@pytest\.mark\.slow\s*\n\s*def (\w*process\w*)", text
        )
        assert match, "process-engine compiled test must be slow-marked"

    def test_compiled_property_tests_use_shared_profiles(self):
        for name in (
            "core/test_compiled_kernels.py",
            "exec/test_compiled_equivalence.py",
        ):
            text = (TESTS / name).read_text()
            assert "from profiles import examples" in text, name
            assert "settings(max_examples" not in text, name

    def test_ci_runs_compiled_smoke_on_both_legs(self):
        """`make bench-compiled` exercises the provider on the numba leg
        and the cc/auto-fallback path on the numba-free leg."""
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert ci.count("make bench-compiled") >= 2
        assert "[test,compiled]" in ci
        assert "bench-compiled:" in (REPO_ROOT / "Makefile").read_text()


class TestPipelineTree:
    """The streaming-pipeline suite stays wired into every gate."""

    EXPECTED = {
        "pipeline/test_pipeline_depth.py",
        "pipeline/test_staging.py",
    }

    def test_pipeline_tree_exists_and_non_empty(self):
        """One module per guarantee: depth bit-identity properties, and
        the staging arena/budget/scheduler + backpressure/out-of-core."""
        for name in self.EXPECTED:
            path = TESTS / name
            assert path.exists() and path.stat().st_size > 0, name

    def test_coverage_floor_requires_pipeline_tree(self):
        """tools/coverage_floor.py refuses to gate without these files,
        so a rename can't silently drop the pipeline coverage."""
        text = (REPO_ROOT / "tools" / "coverage_floor.py").read_text()
        assert "tests/pipeline/test_pipeline_depth*.py" in text
        assert "tests/pipeline/test_staging*.py" in text

    def test_out_of_core_demo_is_slow_marked(self):
        """The 2^22 out-of-core ingest is the one expensive pipeline
        test; it must carry the registered `slow` marker."""
        text = (TESTS / "pipeline" / "test_staging.py").read_text()
        match = re.search(
            r"@pytest\.mark\.slow\s*\n\s*def (\w*2_22\w*)", text
        )
        assert match, "2^22 out-of-core ingest must be slow-marked"

    def test_depth_property_tests_use_shared_profiles(self):
        text = (TESTS / "pipeline" / "test_pipeline_depth.py").read_text()
        assert "from profiles import examples" in text
        assert "settings(max_examples" not in text

    def test_ci_runs_stream_smoke_on_both_legs(self):
        """`make stream-smoke` exercises the pipelined overlap gate on
        the numba leg and the numba-free staging path on the other."""
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert ci.count("make stream-smoke") >= 2
        assert "stream-smoke:" in (REPO_ROOT / "Makefile").read_text()


class TestServeTree:
    """The serving-layer suite stays wired into every gate."""

    EXPECTED = {
        "serve/test_protocol.py",
        "serve/test_cache_properties.py",
        "serve/test_server_client.py",
        "serve/test_soak.py",
        "serve/test_faults.py",
    }

    def test_serve_tree_exists_and_non_empty(self):
        """One module per guarantee: wire-codec round-trips, cache
        coherence vs a reference simulator, live end-to-end round
        trips, soak serial-replay identity, and fault injection."""
        for name in self.EXPECTED:
            path = TESTS / name
            assert path.exists() and path.stat().st_size > 0, name

    def test_coverage_floor_requires_serve_tree(self):
        """tools/coverage_floor.py refuses to gate without these files,
        so a rename can't silently drop the serving coverage."""
        text = (REPO_ROOT / "tools" / "coverage_floor.py").read_text()
        assert "tests/serve/test_soak*.py" in text
        assert "tests/serve/test_faults*.py" in text
        assert "tests/serve/test_cache_properties*.py" in text
        assert "tests/serve/test_protocol*.py" in text

    def test_process_client_soak_is_slow_marked(self):
        """The multi-process soak spawns real client processes; it must
        carry the registered `slow` marker to stay out of tier-1."""
        text = (TESTS / "serve" / "test_soak.py").read_text()
        match = re.search(
            r"@pytest\.mark\.slow\s*\n\s*def (\w*process\w*)", text
        )
        assert match, "process-client soak test must be slow-marked"

    def test_serve_property_tests_use_shared_profiles(self):
        for name in ("serve/test_protocol.py", "serve/test_cache_properties.py"):
            text = (TESTS / name).read_text()
            assert "from profiles import examples" in text, name
            assert "settings(max_examples" not in text, name

    def test_ci_runs_serve_smoke_on_both_legs(self):
        """`make serve-smoke` boots a live server on the numba-free leg
        and again atop the compiled kernel path on the numba leg."""
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert ci.count("make serve-smoke") >= 2
        assert "serve-smoke:" in (REPO_ROOT / "Makefile").read_text()


class TestClusterTree:
    """The hierarchical-topology suite stays wired into every gate."""

    EXPECTED = {
        "multigpu/test_hierarchical.py",
        "multigpu/test_topology.py",
        "multigpu/test_multisplit.py",
    }

    def test_cluster_tree_exists_and_non_empty(self):
        """One module per layer: cluster bit-identity + NIC charging
        properties, the topology graph model, and the multisplit the
        two-level split composes."""
        for name in self.EXPECTED:
            path = TESTS / name
            assert path.exists() and path.stat().st_size > 0, name

    def test_coverage_floor_requires_cluster_tree(self):
        """tools/coverage_floor.py refuses to gate without these files,
        so a rename can't silently drop the hierarchical coverage."""
        text = (REPO_ROOT / "tools" / "coverage_floor.py").read_text()
        assert "tests/multigpu/test_hierarchical*.py" in text

    def test_hierarchical_property_tests_use_shared_profiles(self):
        text = (TESTS / "multigpu" / "test_hierarchical.py").read_text()
        assert "from profiles import examples" in text
        assert "settings(max_examples" not in text

    def test_ci_runs_cluster_smoke_on_both_legs(self):
        """`make cluster-smoke` gates the one-node-cluster bit-identity
        and NIC charging on the numba-free leg and again atop the
        compiled kernel path on the numba leg."""
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert ci.count("make cluster-smoke") >= 2
        assert "cluster-smoke:" in (REPO_ROOT / "Makefile").read_text()


class TestCompactTree:
    """The compact-slot-layout suite stays wired into every gate."""

    EXPECTED = {
        "core/test_store.py",
        "core/test_compact_layout.py",
        "core/test_serialize.py",
        "multigpu/test_compact_distribution.py",
    }

    def test_compact_tree_exists_and_non_empty(self):
        """One module per layer: the store/view planes, the cross-layer
        bit-identity + modelled-footprint properties, the v3 snapshot
        width guard, and the distributed byte-accounting contract."""
        for name in self.EXPECTED:
            path = TESTS / name
            assert path.exists() and path.stat().st_size > 0, name

    def test_coverage_floor_requires_compact_tree(self):
        """tools/coverage_floor.py refuses to gate without these files,
        so a rename can't silently drop the compact-layout coverage."""
        text = (REPO_ROOT / "tools" / "coverage_floor.py").read_text()
        assert "tests/core/test_compact_layout*.py" in text
        assert "tests/core/test_store*.py" in text
        assert "tests/multigpu/test_compact_distribution*.py" in text

    def test_crossover_cascade_is_slow_marked(self):
        """The 2^17-per-shard strictly-fewer-bytes cascade is the one
        expensive compact test; it must carry the `slow` marker."""
        text = (TESTS / "multigpu" / "test_compact_distribution.py").read_text()
        match = re.search(
            r"@pytest\.mark\.slow\s*\n\s*def (\w*crossover\w*)", text
        )
        assert match, "past-crossover cascade test must be slow-marked"

    def test_compact_property_tests_use_shared_profiles(self):
        for name in ("core/test_compact_layout.py", "core/test_store.py"):
            text = (TESTS / name).read_text()
            assert "from profiles import examples" in text, name
            assert "settings(max_examples" not in text, name

    def test_ci_runs_compact_smoke_on_both_legs(self):
        """`make compact-smoke` gates cross-layout bit-identity and the
        narrower modelled charges on the numba-free leg and again atop
        the numba provider on the compiled leg."""
        ci = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
        assert ci.count("make compact-smoke") >= 2
        assert "compact-smoke:" in (REPO_ROOT / "Makefile").read_text()


class TestHypothesisBudget:
    def test_property_tests_cap_examples(self):
        """Example counts stay within the tier-1 budget.

        Counts appear either as raw ``settings(max_examples=N)`` or via
        the shared profile helper ``@examples(N)`` (scaled by the active
        Hypothesis profile, 1.0 under the default ``ci`` profile).
        """
        found = 0
        pattern = re.compile(r"max_examples=(\d+)|@examples\((\d+)\)")
        for path in TESTS.rglob("test_*.py"):
            for raw, scaled in pattern.findall(path.read_text()):
                found += 1
                count = int(raw or scaled)
                assert count <= MAX_EXAMPLES_BUDGET, (
                    f"{path.name}: {count} examples exceeds "
                    f"tier-1 budget {MAX_EXAMPLES_BUDGET}"
                )
        assert found > 0  # the fused-path property tests exist

    def test_migrated_property_tests_use_shared_profiles(self):
        """The fast-path suites draw budgets from tests/profiles.py."""
        for name in (
            "exec/test_backend_equivalence.py",
            "primitives/test_scatter.py",
            "multigpu/test_fused_distribution.py",
        ):
            text = (TESTS / name).read_text()
            assert "from profiles import examples" in text, name
            assert "settings(max_examples" not in text, name
