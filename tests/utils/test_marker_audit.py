"""Audit of the pytest marker configuration and test-time budget.

Tier-1 is ``pytest -q`` with ``-m 'not slow'``: anything expensive must
carry the (registered) ``slow`` marker, and the hypothesis property
tests that guard the fused distribution path must keep their example
counts small enough to stay inside the tier-1 budget.
"""

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TESTS = REPO_ROOT / "tests"

MAX_EXAMPLES_BUDGET = 100


def _pyproject() -> str:
    return (REPO_ROOT / "pyproject.toml").read_text()


class TestMarkerConfig:
    def test_slow_marker_registered(self):
        assert re.search(r'"slow:.*"', _pyproject())

    def test_tier1_deselects_slow(self):
        assert "-m 'not slow'" in _pyproject()

    def test_benchmarks_outside_tier1_paths(self):
        """The 2^18 measurement lives in benchmarks/, not testpaths."""
        match = re.search(r"testpaths\s*=\s*\[([^\]]*)\]", _pyproject())
        assert match and "benchmarks" not in match.group(1)
        assert (REPO_ROOT / "benchmarks" / "bench_distribution.py").exists()

    def test_slow_marks_use_registered_name(self):
        """Every pytest.mark.<name> in tests/ is a registered marker."""
        registered = set(
            re.findall(r'"(\w+):', _pyproject())
        ) | {"parametrize", "skip", "skipif", "xfail", "usefixtures", "filterwarnings"}
        for path in TESTS.rglob("test_*.py"):
            for mark in re.findall(r"pytest\.mark\.(\w+)", path.read_text()):
                assert mark in registered, f"{path.name}: unregistered mark {mark}"


class TestHypothesisBudget:
    def test_property_tests_cap_examples(self):
        """settings(max_examples=...) stays within the tier-1 budget."""
        found = 0
        for path in TESTS.rglob("test_*.py"):
            for count in re.findall(r"max_examples=(\d+)", path.read_text()):
                found += 1
                assert int(count) <= MAX_EXAMPLES_BUDGET, (
                    f"{path.name}: max_examples={count} exceeds "
                    f"tier-1 budget {MAX_EXAMPLES_BUDGET}"
                )
        assert found > 0  # the fused-path property tests exist
