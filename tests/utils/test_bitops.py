"""Unit and property tests for the bit intrinsics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bools_from_mask,
    clear_lowest_bit,
    ffs,
    ffs_array,
    is_power_of_two,
    mask_from_bools,
    next_power_of_two,
    popcount,
    popcount_array,
)


class TestFfs:
    def test_zero_mask_returns_zero(self):
        assert ffs(0) == 0

    def test_single_bit_positions(self):
        for i in range(64):
            assert ffs(1 << i) == i + 1

    def test_matches_cuda_semantics_for_mixed_masks(self):
        assert ffs(0b1010) == 2
        assert ffs(0b1000_0001) == 1
        assert ffs(0xFFFFFFFF) == 1

    @given(st.integers(min_value=1, max_value=(1 << 64) - 1))
    def test_ffs_points_at_lowest_set_bit(self, mask):
        pos = ffs(mask)
        assert mask & (1 << (pos - 1))
        assert mask & ((1 << (pos - 1)) - 1) == 0

    def test_ffs_array_matches_scalar(self):
        masks = np.array([0, 1, 2, 12, 1 << 63, 0b1010], dtype=np.uint64)
        expected = [ffs(int(m)) for m in masks]
        assert ffs_array(masks).tolist() == expected

    def test_ffs_array_empty(self):
        assert ffs_array(np.empty(0, dtype=np.uint64)).shape == (0,)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones_32(self):
        assert popcount(0xFFFFFFFF) == 32

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_matches_python_bitcount(self, mask):
        assert popcount(mask) == bin(mask).count("1")

    def test_popcount_array(self):
        masks = np.array([0, 1, 3, 0xFF, 1 << 40], dtype=np.uint64)
        assert popcount_array(masks).tolist() == [0, 1, 2, 8, 1]


class TestBallotMasks:
    def test_roundtrip_small(self):
        flags = np.array([True, False, True, True])
        mask = mask_from_bools(flags)
        assert mask == 0b1101
        assert bools_from_mask(mask, 4).tolist() == flags.tolist()

    def test_empty_flags(self):
        assert mask_from_bools(np.array([], dtype=bool)) == 0

    def test_lane_zero_is_bit_zero(self):
        assert mask_from_bools(np.array([True] + [False] * 7)) == 1

    def test_too_many_lanes_rejected(self):
        with pytest.raises(ValueError):
            mask_from_bools(np.ones(65, dtype=bool))

    def test_bools_from_mask_bad_width(self):
        with pytest.raises(ValueError):
            bools_from_mask(1, 65)

    @given(st.lists(st.booleans(), min_size=1, max_size=32))
    def test_roundtrip_property(self, flags):
        arr = np.array(flags, dtype=bool)
        assert bools_from_mask(mask_from_bools(arr), len(flags)).tolist() == flags


class TestClearLowestBit:
    def test_clears_exactly_one(self):
        assert clear_lowest_bit(0b1010) == 0b1000
        assert clear_lowest_bit(0b1000) == 0

    @given(st.integers(min_value=1, max_value=(1 << 63)))
    def test_reduces_popcount_by_one(self, mask):
        assert popcount(clear_lowest_bit(mask)) == popcount(mask) - 1


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << i) for i in range(32))
        assert not any(is_power_of_two(x) for x in (0, 3, 5, 6, 7, 9, -2))

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1023) == 1024
        assert next_power_of_two(1024) == 1024

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(st.integers(min_value=1, max_value=1 << 40))
    def test_next_power_bounds(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p // 2 < n
