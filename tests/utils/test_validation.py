"""Tests for argument validation."""

import numpy as np
import pytest

from repro.constants import MAX_KEY
from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_choice,
    check_group_size,
    check_in_range,
    check_keys,
    check_load_factor,
    check_non_negative,
    check_positive,
    check_same_length,
    check_values,
)


class TestGroupSize:
    @pytest.mark.parametrize("g", [1, 2, 4, 8, 16, 32])
    def test_valid_sizes(self, g):
        assert check_group_size(g) == g

    @pytest.mark.parametrize("g", [0, 3, 5, 6, 7, 64, -1])
    def test_invalid_sizes(self, g):
        with pytest.raises(ConfigurationError):
            check_group_size(g)


class TestScalars:
    def test_positive(self):
        assert check_positive("x", 1) == 1
        with pytest.raises(ConfigurationError):
            check_positive("x", 0)

    def test_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1)

    def test_in_range_inclusive(self):
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_in_range("x", 1.0, 0.0, 1.0, inclusive=False)

    def test_load_factor_bounds(self):
        assert check_load_factor(0.5) == 0.5
        assert check_load_factor(1.0) == 1.0
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                check_load_factor(bad)


class TestKeysValues:
    def test_keys_cast_to_uint32(self):
        out = check_keys(np.array([1, 2, 3], dtype=np.int64))
        assert out.dtype == np.uint32

    def test_reserved_top_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            check_keys(np.array([MAX_KEY + 1], dtype=np.int64))

    def test_max_legal_key_accepted(self):
        assert check_keys(np.array([MAX_KEY], dtype=np.int64))[0] == MAX_KEY

    def test_negative_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            check_keys(np.array([-1]))

    def test_float_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            check_keys(np.array([1.5]))

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            check_keys(np.zeros((2, 2), dtype=np.uint32))

    def test_empty_keys_ok(self):
        assert check_keys(np.array([], dtype=np.uint32)).size == 0

    def test_values_allow_full_32bit(self):
        out = check_values(np.array([0xFFFFFFFF], dtype=np.uint64))
        assert out[0] == 0xFFFFFFFF

    def test_same_length(self):
        check_same_length("a", [1], "b", [2])
        with pytest.raises(ConfigurationError):
            check_same_length("a", [1], "b", [2, 3])


class TestChoice:
    def test_choice(self):
        assert check_choice("m", "a", ("a", "b")) == "a"
        with pytest.raises(ConfigurationError):
            check_choice("m", "c", ("a", "b"))
