"""Shared Hypothesis profiles for the whole test suite.

Three profiles, selected with ``REPRO_HYPOTHESIS_PROFILE``:

``ci`` (default)
    Deterministic (``derandomize=True``): example generation is a pure
    function of each test, so tier-1 runs are bit-reproducible and never
    flake on a fresh draw.  Example counts are the budgeted baseline.
``dev``
    Quarter-scale example counts for fast local iteration, randomized
    draws (with ``print_blob`` so failures replay).
``thorough``
    5x example counts, randomized — the pre-merge soak.

Property tests declare their *baseline* budget with ``@examples(n)``
instead of ``@settings(max_examples=n)``; the active profile scales it.
The marker audit (``tests/utils/test_marker_audit.py``) parses both
spellings against the tier-1 budget.
"""

from __future__ import annotations

import os

from hypothesis import settings

__all__ = ["PROFILE_ENV", "SCALES", "active_profile", "examples", "register_profiles"]

PROFILE_ENV = "REPRO_HYPOTHESIS_PROFILE"

#: multiplier applied to every @examples(n) baseline
SCALES = {"ci": 1.0, "dev": 0.25, "thorough": 5.0}


def register_profiles() -> None:
    settings.register_profile(
        "ci", deadline=None, derandomize=True, print_blob=True
    )
    settings.register_profile("dev", deadline=None, print_blob=True)
    settings.register_profile("thorough", deadline=None, print_blob=True)


def active_profile() -> str:
    name = os.environ.get(PROFILE_ENV, "ci")
    return name if name in SCALES else "ci"


def examples(n: int) -> settings:
    """A ``settings`` decorator with profile-scaled ``max_examples``.

    ``n`` is the ci-profile baseline; dev shrinks it, thorough grows it.
    Deadline and determinism come from the active profile.
    """
    scaled = max(1, int(round(n * SCALES[active_profile()])))
    return settings(max_examples=scaled)


register_profiles()
