"""Tests for batch streams."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.generators import BatchStream


class TestBatchStream:
    def test_batch_count_and_sizes(self):
        stream = BatchStream(total=1000, batch_size=300, seed=1)
        assert len(stream) == 4
        sizes = [b.size for b in stream]
        assert sizes == [300, 300, 300, 100]

    def test_unique_stream_globally_disjoint(self):
        stream = BatchStream(total=2000, batch_size=500, distribution="unique", seed=2)
        all_keys = np.concatenate([b.keys for b in stream])
        assert np.unique(all_keys).size == 2000

    def test_batches_deterministic_and_random_access(self):
        stream = BatchStream(total=900, batch_size=300, seed=3)
        b1 = stream.batch(1)
        again = stream.batch(1)
        assert (b1.keys == again.keys).all()
        assert (b1.values == again.values).all()

    def test_batch_index_bounds(self):
        stream = BatchStream(total=100, batch_size=50)
        with pytest.raises(ConfigurationError):
            stream.batch(2)
        with pytest.raises(ConfigurationError):
            stream.batch(-1)

    def test_zipf_stream(self):
        stream = BatchStream(
            total=600, batch_size=200, distribution="zipf", seed=4, s=1.5, universe=50
        )
        for batch in stream:
            assert batch.size == 200
            assert np.unique(batch.keys).size <= 50

    def test_nbytes(self):
        stream = BatchStream(total=100, batch_size=100)
        assert stream.batch(0).nbytes == 100 * 8

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BatchStream(total=0, batch_size=10)
        with pytest.raises(ConfigurationError):
            BatchStream(total=10, batch_size=0)

    def test_values_differ_across_batches(self):
        stream = BatchStream(total=400, batch_size=200, seed=5)
        assert not (stream.batch(0).values == stream.batch(1).values).all()
