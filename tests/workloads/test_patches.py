"""Tests for the image-patch workload (§IV-B)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import check_keys
from repro.workloads.patches import (
    extract_patches,
    patch_amplification,
    patch_keys,
    random_image,
)


class TestRandomImage:
    def test_shape_and_dtype(self):
        img = random_image(50, 70, seed=1)
        assert img.shape == (50, 70) and img.dtype == np.uint8

    def test_deterministic(self):
        assert (random_image(32, 32, seed=3) == random_image(32, 32, seed=3)).all()

    def test_noise_perturbs(self):
        a = random_image(32, 32, seed=4, noise=0)
        b = random_image(32, 32, seed=4, noise=20)
        assert not (a == b).all()

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            random_image(0, 10)
        with pytest.raises(ConfigurationError):
            random_image(10, 10, noise=-1)


class TestExtractPatches:
    def test_count(self):
        """(H−p+1)·(W−p+1) windows, as in the paper's k-mer analogy."""
        img = random_image(40, 60, seed=5)
        assert extract_patches(img, 7).shape == (34 * 54, 7, 7)

    def test_contents_match_slices(self):
        img = random_image(20, 20, seed=6)
        patches = extract_patches(img, 5)
        w = 20 - 5 + 1
        assert (patches[0] == img[0:5, 0:5]).all()
        assert (patches[w + 1] == img[1:6, 1:6]).all()

    def test_is_a_view(self):
        img = random_image(16, 16, seed=7)
        patches = extract_patches(img, 4)
        assert patches.base is not None  # zero-copy stride trick

    def test_patch_size_bounds(self):
        img = random_image(8, 8, seed=8)
        with pytest.raises(ConfigurationError):
            extract_patches(img, 9)
        with pytest.raises(ConfigurationError):
            extract_patches(img, 0)

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            extract_patches(np.zeros(10, dtype=np.uint8), 2)


class TestPatchKeys:
    def test_identical_patches_identical_keys(self):
        img = random_image(64, 64, seed=9)
        keys = patch_keys(img, 8, seed=1)
        patches = extract_patches(img, 8)
        u, c = np.unique(keys, return_counts=True)
        assert c.max() > 1  # the blocky image repeats patches
        dup_key = u[np.argmax(c)]
        idx = np.flatnonzero(keys == dup_key)
        assert (patches[idx[0]] == patches[idx[1]]).all()

    def test_keys_table_legal(self):
        keys = patch_keys(random_image(32, 32, seed=10), 4)
        check_keys(keys)

    def test_distinct_patches_mostly_distinct_keys(self):
        rng = np.random.default_rng(11)
        img = rng.integers(0, 256, size=(64, 64)).astype(np.uint8)  # pure noise
        keys = patch_keys(img, 8)
        assert np.unique(keys).size > 0.99 * keys.size

    def test_count_matches_patches(self):
        img = random_image(30, 40, seed=12)
        assert patch_keys(img, 6).shape[0] == (30 - 6 + 1) * (40 - 6 + 1)


class TestAmplification:
    def test_roughly_p_squared(self):
        """Large images: ≈ p² bytes of patches per transferred byte."""
        amp = patch_amplification(1024, 1024, 8)
        assert amp == pytest.approx(64, rel=0.02)

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            patch_amplification(4, 4, 5)

    def test_dedup_pipeline_end_to_end(self):
        """Patches → keys → counting table → duplicate detection."""
        from repro.core.table import WarpDriveHashTable

        img = random_image(64, 64, seed=13)
        keys = patch_keys(img, 8, seed=2)
        u, counts = np.unique(keys, return_counts=True)
        table = WarpDriveHashTable.for_load_factor(u.size, 0.9)
        table.insert(u, np.minimum(counts, 0xFFFFFFFF).astype(np.uint32))
        got, found = table.query(u)
        assert found.all() and (got == counts).all()
