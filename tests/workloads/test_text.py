"""Tests for the bag-of-words workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import check_keys
from repro.workloads.text import bag_of_words, synthetic_corpus, token_keys, tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Hello, WORLD! 42x") == ["hello", "world", "42x"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("...") == []

    def test_trailing_word(self):
        assert tokenize("abc") == ["abc"]


class TestTokenKeys:
    def test_deterministic(self):
        a = token_keys(["alpha", "beta"])
        b = token_keys(["alpha", "beta"])
        assert (a == b).all()

    def test_distinct_tokens_distinct_keys(self):
        toks = [f"word{i}" for i in range(2000)]
        keys = token_keys(toks)
        assert np.unique(keys).size == 2000  # no collisions on this set

    def test_keys_legal_for_tables(self):
        check_keys(token_keys(["x", "yy", "zzz"]))

    def test_empty_list(self):
        assert token_keys([]).size == 0


class TestSyntheticCorpus:
    def test_size_and_determinism(self):
        c = synthetic_corpus(1000, seed=1)
        assert len(c) == 1000
        assert c == synthetic_corpus(1000, seed=1)

    def test_zipfian_shape(self):
        c = synthetic_corpus(20_000, zipf_s=1.5, seed=2)
        _, counts = np.unique(c, return_counts=True)
        counts = np.sort(counts)[::-1]
        assert counts[0] > 5 * counts[min(20, counts.size - 1)]

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            synthetic_corpus(0)
        with pytest.raises(ConfigurationError):
            synthetic_corpus(10, zipf_s=0.9)


class TestBagOfWords:
    def test_counts_sum_to_tokens(self):
        tokens = synthetic_corpus(5000, seed=3)
        keys, counts, legend = bag_of_words(tokens)
        assert int(counts.sum()) == 5000
        assert keys.size == counts.size

    def test_legend_maps_back(self):
        tokens = ["apple", "pear", "apple"]
        keys, counts, legend = bag_of_words(tokens)
        names = sorted(legend.values())
        assert names == ["apple", "pear"]
        apple_key = token_keys(["apple"])[0]
        assert legend[int(apple_key)] == "apple"
        assert counts[keys == apple_key][0] == 2
