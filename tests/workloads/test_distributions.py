"""Tests for the paper's key distributions (§V-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MAX_KEY
from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    expected_unique_fraction,
    make_distribution,
    random_values,
    uniform_keys,
    unique_keys,
    zipf_keys,
)


class TestUnique:
    def test_all_distinct(self):
        keys = unique_keys(10_000, seed=1)
        assert np.unique(keys).size == 10_000

    def test_deterministic(self):
        assert (unique_keys(100, seed=5) == unique_keys(100, seed=5)).all()

    def test_seeds_differ(self):
        assert not (unique_keys(100, seed=1) == unique_keys(100, seed=2)).all()

    def test_within_legal_key_space(self):
        keys = unique_keys(10_000, seed=3)
        assert int(keys.max()) <= MAX_KEY

    def test_order_is_shuffled(self):
        keys = unique_keys(1000, seed=4)
        assert not (np.diff(keys.astype(np.int64)) > 0).all()

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            unique_keys(0)

    @given(st.integers(min_value=1, max_value=5000), st.integers(min_value=0, max_value=999))
    @settings(max_examples=15, deadline=None)
    def test_uniqueness_property(self, n, seed):
        assert np.unique(unique_keys(n, seed=seed)).size == n


class TestUniform:
    def test_size_and_range(self):
        keys = uniform_keys(5000, seed=1)
        assert keys.size == 5000
        assert int(keys.max()) <= MAX_KEY

    def test_bootstrap_ratio_formula(self):
        """§V-A: the number of unique keys scales with 1 - e^(-n/2^32)."""
        assert expected_unique_fraction(1) == pytest.approx(1.0, abs=1e-6)
        big = expected_unique_fraction(1 << 32)
        assert big == pytest.approx(1 - np.exp(-1), rel=1e-3)

    def test_fig7_omission_argument(self):
        """For n = 2^27 draws, ≈98.5% are unique — why the paper skips
        the uniform panel in Fig. 7."""
        assert expected_unique_fraction(1 << 27) == pytest.approx(0.985, abs=0.002)


class TestZipf:
    def test_multiplicities_follow_power_law(self):
        keys = zipf_keys(50_000, s=1.5, universe=1000, seed=2)
        _, counts = np.unique(keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        # top key dominates, tail is thin
        assert counts[0] > 20 * counts[min(99, counts.size - 1)]

    def test_damping_changes_skew(self):
        flat = zipf_keys(20_000, s=1.0 + 1e-6, universe=2000, seed=3)
        steep = zipf_keys(20_000, s=2.0, universe=2000, seed=3)
        assert np.unique(flat).size > np.unique(steep).size

    def test_exponent_must_exceed_one(self):
        """§V-A: 's > 1 is an exponential damping coefficient'."""
        with pytest.raises(ConfigurationError):
            zipf_keys(100, s=1.0)

    def test_keys_are_hashed_not_sequential(self):
        keys = zipf_keys(1000, s=1.2, universe=100, seed=4)
        assert int(keys.max()) > 1000  # rank-to-key map spreads values

    def test_deterministic(self):
        a = zipf_keys(500, s=1.3, universe=50, seed=9)
        b = zipf_keys(500, s=1.3, universe=50, seed=9)
        assert (a == b).all()


class TestRegistry:
    def test_make_distribution_names(self):
        for name in ("unique", "uniform", "zipf"):
            keys = make_distribution(name, 100, seed=1)
            assert keys.size == 100

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_distribution("gaussian", 10)

    def test_random_values_dtype(self):
        v = random_values(100, seed=1)
        assert v.dtype == np.uint32
