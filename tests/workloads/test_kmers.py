"""Tests for k-mer extraction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.kmers import (
    encode_bases,
    extract_kmers,
    kmer_to_string,
    pcie_amplification,
    random_dna,
)


class TestEncoding:
    def test_base_codes(self):
        assert encode_bases(b"ACGT").tolist() == [0, 1, 2, 3]

    def test_lowercase_accepted(self):
        assert encode_bases("acgt").tolist() == [0, 1, 2, 3]

    def test_non_acgt_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_bases(b"ACGN")


class TestExtraction:
    def test_count_is_n_minus_k_plus_one(self):
        """§IV-B: 'all n − k + 1 substrings of length k'."""
        seq = random_dna(100, seed=1)
        assert extract_kmers(seq, 8).size == 93

    def test_known_packing(self):
        # "ACGT" with k=4 -> 0b00_01_10_11 = 0x1B
        assert int(extract_kmers(b"ACGT", 4)[0]) == 0x1B

    def test_sliding_window(self):
        kmers = extract_kmers(b"AACGT", 4)
        assert kmer_to_string(int(kmers[0]), 4) == "AACG"
        assert kmer_to_string(int(kmers[1]), 4) == "ACGT"

    def test_roundtrip_strings(self):
        seq = random_dna(50, seed=2)
        kmers = extract_kmers(seq, 10)
        for i in (0, 20, 40):
            assert kmer_to_string(int(kmers[i]), 10) == seq[i : i + 10].decode()

    def test_k_bounds(self):
        with pytest.raises(ConfigurationError):
            extract_kmers(b"ACGT", 0)
        with pytest.raises(ConfigurationError):
            extract_kmers(b"ACGT" * 10, 16)  # 32 bits would hit sentinels

    def test_sequence_shorter_than_k(self):
        with pytest.raises(ConfigurationError):
            extract_kmers(b"ACG", 5)

    def test_keys_fit_table_key_space(self):
        from repro.utils.validation import check_keys

        kmers = extract_kmers(random_dna(1000, seed=3), 15)
        check_keys(kmers)  # must not raise

    def test_duplicate_kmers_preserved(self):
        kmers = extract_kmers(b"AAAAA", 3)
        assert (kmers == kmers[0]).all()


class TestAmplification:
    def test_roughly_k(self):
        """§IV-B: 'the effective transfer rate over the PCIe bus is
        artificially increased by a factor of approximately k'."""
        amp = pcie_amplification(1_000_000, 12)
        assert amp == pytest.approx(12, rel=0.01)

    def test_too_short(self):
        with pytest.raises(ConfigurationError):
            pcie_amplification(3, 5)


class TestRandomDna:
    def test_alphabet(self):
        seq = random_dna(1000, seed=4)
        assert set(seq) <= set(b"ACGT")

    def test_deterministic(self):
        assert random_dna(64, seed=5) == random_dna(64, seed=5)

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            random_dna(0)
