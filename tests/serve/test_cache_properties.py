"""Cache-coherence properties against a reference simulator.

The serving layer's contract is *never stale*: under any interleaving
of table mutations (each followed by invalidation, as the server's
coalescer orders them) and lookups-with-admission, a cache hit must
return exactly the value a reference dict holds at that moment.  The
second family checks the accounting: ``hits + misses`` equals keys
looked up, residency never exceeds capacity, and the stats snapshot
agrees with an independently simulated hit count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.errors import ConfigurationError
from repro.serve.cache import HotKeyCache

KEYS = st.integers(1, 24)


def _ops(max_ops: int = 40):
    """An interleaving of writes, erases, and batched lookups."""
    return st.lists(
        st.one_of(
            st.tuples(st.just("write"), KEYS, st.integers(0, 2**32 - 1)),
            st.tuples(st.just("erase"), KEYS, st.just(0)),
            st.tuples(
                st.just("lookup"),
                st.lists(KEYS, min_size=1, max_size=8),
                st.just(0),
            ),
        ),
        max_size=max_ops,
    )


def _serve(cache: HotKeyCache, ref: dict, batch: list[int]):
    """One server-shaped read: lookup, then admit found misses from
    the authoritative store — exactly the coalescer's discipline."""
    keys = np.array(batch, dtype=np.uint32)
    values, hit = cache.lookup(keys)
    miss_keys = keys[~hit]
    found_mask = np.array([int(k) in ref for k in miss_keys], dtype=bool)
    if found_mask.any():
        admit_keys = miss_keys[found_mask]
        admit_values = np.array(
            [ref[int(k)] for k in admit_keys], dtype=np.uint32
        )
        cache.admit(admit_keys, admit_values)
    return keys, values, hit


class TestNeverStale:
    @pytest.mark.parametrize("capacity", [1, 4, 16])
    @given(ops=_ops())
    @examples(60)
    def test_hits_always_match_reference(self, capacity, ops):
        cache = HotKeyCache(capacity, promote_after=1, sketch_sample=1)
        ref: dict[int, int] = {}
        for op, arg, value in ops:
            if op == "write":
                ref[arg] = value
                cache.invalidate(np.array([arg], dtype=np.uint32))
            elif op == "erase":
                ref.pop(arg, None)
                cache.invalidate(np.array([arg], dtype=np.uint32))
            else:
                keys, values, hit = _serve(cache, ref, arg)
                for k, v, h in zip(keys, values, hit):
                    if h:
                        assert int(k) in ref, "hit on an erased key"
                        assert ref[int(k)] == int(v), (
                            f"stale hit: key {k} cached {v}, "
                            f"reference {ref[int(k)]}"
                        )

    @given(ops=_ops())
    @examples(40)
    def test_erased_keys_never_hit_again_until_rewritten(self, ops):
        cache = HotKeyCache(8, promote_after=1, sketch_sample=1)
        ref: dict[int, int] = {}
        dead: set[int] = set()
        for op, arg, value in ops:
            if op == "write":
                ref[arg] = value
                dead.discard(arg)
                cache.invalidate(np.array([arg], dtype=np.uint32))
            elif op == "erase":
                ref.pop(arg, None)
                dead.add(arg)
                cache.invalidate(np.array([arg], dtype=np.uint32))
            else:
                keys, _values, hit = _serve(cache, ref, arg)
                for k, h in zip(keys, hit):
                    assert not (h and int(k) in dead)


class TestAccounting:
    @given(ops=_ops())
    @examples(60)
    def test_hit_miss_counts_match_simulation(self, ops):
        """The cache's own counters agree with an oracle that models
        residency externally (admission echo + invalidation)."""
        cache = HotKeyCache(64, promote_after=1, sketch_sample=1)
        resident: set[int] = set()
        ref: dict[int, int] = {}
        expect_hits = expect_lookups = 0
        for op, arg, value in ops:
            if op == "write":
                ref[arg] = value
                resident.discard(arg)
                cache.invalidate(np.array([arg], dtype=np.uint32))
            elif op == "erase":
                ref.pop(arg, None)
                resident.discard(arg)
                cache.invalidate(np.array([arg], dtype=np.uint32))
            else:
                expect_lookups += len(arg)
                expect_hits += sum(1 for k in arg if k in resident)
                keys, _values, hit = _serve(cache, ref, arg)
                # keys 1..24 at capacity 64 occupy no set beyond its two
                # ways (checked against the deterministic mix), so no
                # admission can evict — promote_after=1 then makes every
                # found miss resident and the oracle below exact
                resident.update(
                    int(k) for k, h in zip(keys, hit)
                    if not h and int(k) in ref
                )
        stats = cache.stats()
        assert stats.lookups == expect_lookups
        assert stats.hits == expect_hits
        assert stats.misses == expect_lookups - expect_hits
        if expect_lookups:
            assert stats.hit_rate == pytest.approx(
                expect_hits / expect_lookups
            )

    @pytest.mark.parametrize("capacity", [1, 2, 5, 32])
    @given(ops=_ops())
    @examples(30)
    def test_residency_never_exceeds_capacity(self, capacity, ops):
        cache = HotKeyCache(capacity, promote_after=1, sketch_sample=1)
        ref = {k: k * 7 for k in range(1, 25)}
        for op, arg, _value in ops:
            if op == "lookup":
                _serve(cache, ref, arg)
            else:
                cache.invalidate(np.array([arg], dtype=np.uint32))
            assert len(cache) <= cache.capacity
        stats = cache.stats()
        assert stats.size <= stats.capacity

    def test_stats_snapshot_fields(self):
        cache = HotKeyCache(4, promote_after=1, sketch_sample=1)
        keys = np.array([1, 2], dtype=np.uint32)
        cache.lookup(keys)
        cache.admit(keys, keys * 10)
        cache.lookup(keys)
        stats = cache.stats().to_dict()
        assert stats["schema_version"] == 1
        assert stats["hits"] == 2 and stats["misses"] == 2
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["admitted"] == 2
        assert stats["size"] == 2 and stats["capacity"] == 4


class TestAdmissionPolicy:
    def test_promotion_threshold_gates_cold_keys(self):
        cache = HotKeyCache(8, promote_after=3, sketch_sample=1)
        keys = np.array([5], dtype=np.uint32)
        values = np.array([50], dtype=np.uint32)
        for _ in range(2):
            cache.lookup(keys)
            cache.admit(keys, values)
            assert len(cache) == 0, "admitted below the threshold"
        cache.lookup(keys)
        cache.admit(keys, values)
        assert len(cache) == 1

    def test_hot_resident_survives_tail_churn(self):
        """A frequently-touched resident cannot be displaced by a
        string of one-hit-wonder keys (the TinyLFU duel)."""
        cache = HotKeyCache(2, promote_after=1, sketch_sample=1)
        hot = np.array([1], dtype=np.uint32)
        hot_value = np.array([11], dtype=np.uint32)
        for _ in range(50):
            cache.lookup(hot)
        cache.admit(hot, hot_value)
        for tail_key in range(100, 140):
            tail = np.array([tail_key], dtype=np.uint32)
            cache.lookup(tail)
            cache.admit(tail, tail * 3)
        values, hit = cache.lookup(hot)
        assert hit.all() and values[0] == 11

    def test_clear_empties_residency_and_sketch(self):
        cache = HotKeyCache(8, promote_after=1, sketch_sample=1)
        keys = np.array([1, 2, 3], dtype=np.uint32)
        cache.lookup(keys)
        cache.admit(keys, keys)
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0
        _values, hit = cache.lookup(keys)
        assert not hit.any()

    def test_invalid_configuration_rejected(self):
        for bad in (
            dict(capacity=0),
            dict(capacity=4, promote_after=0),
            dict(capacity=4, sketch_depth=0),
            dict(capacity=4, sketch_depth=9),
            dict(capacity=4, sketch_width=0),
            dict(capacity=4, sketch_sample=0),
        ):
            with pytest.raises(ConfigurationError):
                HotKeyCache(**bad)
