"""Fault injection: dead clients, broken frames, saturated admission.

Every failure mode must surface as a *typed* error frame (or a counted
disconnect) and leave the table consistent — a fault in one connection
can never corrupt another client's view of the data.
"""

from __future__ import annotations

import socket
import struct
import time

import numpy as np
import pytest

from repro.serve import KVClient, KVServer
from repro.serve.protocol import (
    HEADER_BYTES,
    MAGIC,
    VERSION,
    ErrorCode,
    Frame,
    FrameType,
    ServeError,
    decode_error,
    encode_insert,
    encode_query,
    read_frame,
    write_frame,
)
from repro.workloads.distributions import random_values, unique_keys


@pytest.fixture
def server():
    srv = KVServer.create(
        num_gpus=4, capacity=1 << 13, batch_window=0.001
    ).start()
    yield srv
    srv.close()


def _raw_connection(server) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(5.0)
    sock.connect(server.address)
    return sock


def _wait_counter(server, name: str, minimum: float, timeout: float = 5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.stats.get(name) >= minimum:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"{name} never reached {minimum}; counters: "
        f"{server.stats.snapshot()}"
    )


def _assert_table_still_serves(server, seed: int = 99):
    keys = unique_keys(128, seed=seed)
    values = random_values(128, seed=seed + 1)
    with KVClient(server.address, name=f"probe-{seed}") as probe:
        assert probe.insert(keys, values) == 128
        got, found = probe.query(keys)
    assert found.all() and np.array_equal(got, values)


class TestBrokenStreams:
    def test_client_killed_mid_frame_is_counted_not_fatal(self, server):
        """Abort a connection halfway through an INSERT frame: the
        server counts a truncated disconnect and the table stays
        fully serviceable for everyone else."""
        payload = encode_insert(
            unique_keys(1024, seed=1), random_values(1024, seed=2)
        )
        header = struct.pack(
            "<HBBII", MAGIC, VERSION, int(FrameType.INSERT), 5, len(payload)
        )
        sock = _raw_connection(server)
        sock.sendall(header + payload[: len(payload) // 2])
        sock.close()  # dead mid-frame
        _wait_counter(server, "serve.truncated", 1)
        assert server.stats.get("serve.disconnect") >= 1
        assert len(server.table) == 0, "half a frame must never insert"
        _assert_table_still_serves(server, seed=101)

    def test_malformed_header_gets_typed_error_then_close(self, server):
        sock = _raw_connection(server)
        sock.sendall(b"\x00" * HEADER_BYTES)  # zero magic: stream desync
        reply = read_frame(sock)
        assert reply.type == FrameType.ERROR
        code, message = decode_error(reply.payload)
        assert code == ErrorCode.MALFORMED
        assert "magic" in message
        # server hangs up after an unrecoverable stream error
        assert sock.recv(1) == b""
        sock.close()
        assert server.stats.get("serve.rejected.malformed") == 1
        _assert_table_still_serves(server, seed=103)

    def test_malformed_payload_keeps_the_connection(self, server):
        """A well-framed frame with a lying payload is answered and the
        stream stays usable — no desync, no hangup."""
        sock = _raw_connection(server)
        bogus = struct.pack("<I", 1000)  # count says 1000, no key bytes
        write_frame(sock, Frame(FrameType.ERASE, 9, bogus))
        reply = read_frame(sock)
        assert reply.type == FrameType.ERROR
        code, _message = decode_error(reply.payload)
        assert code == ErrorCode.MALFORMED
        # same socket still speaks protocol
        write_frame(
            sock,
            Frame(FrameType.QUERY, 10, encode_query(unique_keys(4, seed=3))),
        )
        assert read_frame(sock).type == FrameType.QUERY_REPLY
        sock.close()

    def test_unexpected_frame_type_is_bad_type(self, server):
        sock = _raw_connection(server)
        write_frame(sock, Frame(FrameType.QUERY_REPLY, 11, b""))
        reply = read_frame(sock)
        code, _ = decode_error(reply.payload)
        assert code == ErrorCode.BAD_TYPE
        sock.close()

    def test_clean_disconnect_is_not_an_error(self, server):
        with KVClient(server.address, name="polite"):
            pass
        _wait_counter(server, "serve.disconnect", 1)
        assert server.stats.get("serve.truncated") == 0
        assert server.stats.get("serve.rejected") == 0


class TestReconnect:
    def test_kill_and_reconnect_mid_schedule(self, server):
        keys = unique_keys(512, seed=4)
        values = random_values(512, seed=5)
        client = KVClient(server.address, name="flaky")
        client.insert(keys[:256], values[:256])
        # simulate a crash: drop the socket without goodbye
        client._sock.close()
        client._sock = None
        client.reconnect()
        _wait_counter(server, "serve.reconnect", 1)
        client.insert(keys[256:], values[256:])
        got, found = client.query(keys)
        client.close()
        assert found.all()
        assert np.array_equal(got, values)
        assert client.connects == 2


class TestAdmissionOverflow:
    def _tiny_server(self):
        """Admission budget that holds ONE of a presplit 1024-key
        insert's two ~4 KiB frames but not both, plus a long batch
        window so the first frame's bytes stay in flight while the
        second one arrives (the client sends all frames of a batch
        before collecting replies)."""
        return KVServer.create(
            num_gpus=2,
            capacity=1 << 12,
            admission_bytes=6 << 10,
            batch_window=0.25,
            cache=False,
        ).start()

    def test_overflow_rejects_with_typed_overloaded(self):
        server = self._tiny_server()
        try:
            keys = unique_keys(1024, seed=6)
            with KVClient(server.address, name="flood") as client:
                with pytest.raises(ServeError) as err:
                    client.insert(keys, keys)
                assert err.value.code == ErrorCode.OVERLOADED
            assert server.stats.get("serve.rejected.overloaded") >= 1
            assert server.stats.get("serve.rejected") >= 1
        finally:
            server.close()

    def test_retry_after_backoff_succeeds(self):
        server = self._tiny_server()
        try:
            keys = unique_keys(1024, seed=7)
            values = random_values(1024, seed=8)
            with KVClient(
                server.address,
                name="patient",
                retry_overloaded=12,
                backoff=0.05,
            ) as client:
                assert client.insert(keys, values) == 1024
                got, found = client.query(keys)
            assert found.all() and np.array_equal(got, values)
            # the retries themselves were counted as rejections
            assert server.stats.get("serve.rejected.overloaded") >= 1
        finally:
            server.close()

    def test_rejected_frames_do_not_leak_budget(self):
        server = self._tiny_server()
        try:
            keys = unique_keys(1024, seed=9)
            with KVClient(
                server.address, name="leaky",
                retry_overloaded=12, backoff=0.05,
            ) as client:
                for _ in range(3):
                    client.insert(keys, keys)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server.budget.in_flight_bytes == 0:
                    break
                time.sleep(0.01)
            assert server.budget.in_flight_bytes == 0
        finally:
            server.close()


class TestDrainOnShutdown:
    def test_ops_after_close_are_shutting_down(self, server):
        # single-frame client: the server hangs up right after answering
        # the first post-stop frame, so a presplit fan-out would race it
        with KVClient(server.address, name="late", presplit=False) as client:
            server._stop.set()  # drain mode: reads still alive
            with pytest.raises(ServeError) as err:
                client.query(unique_keys(16, seed=10))
            assert err.value.code == ErrorCode.SHUTTING_DOWN
