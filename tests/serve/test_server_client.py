"""End-to-end server/client basics over a unix socket.

One live :class:`KVServer` per test class (function-scoped where the
test mutates global counters), real sockets, real threads — these are
the serving layer's integration smoke: inserts visible to queries,
erases visible to both, cache coherence across mutation, per-client
accounting, and the STATS/snapshot surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import KVClient, KVServer
from repro.serve.cache import HotKeyCache
from repro.workloads.distributions import random_values, unique_keys


@pytest.fixture
def server():
    srv = KVServer.create(
        num_gpus=4, capacity=1 << 13, cache_size=512, batch_window=0.001
    ).start()
    yield srv
    srv.close()


@pytest.fixture
def client(server):
    with KVClient(server.address, name="it-client") as c:
        yield c


class TestRoundTrips:
    def test_insert_then_query(self, server, client):
        keys = unique_keys(2048, seed=3)
        values = random_values(2048, seed=4)
        assert client.insert(keys, values) == 2048
        got, found = client.query(keys)
        assert found.all()
        assert np.array_equal(got, values)
        assert len(server.table) == 2048

    def test_missing_keys_take_the_default(self, client):
        keys = unique_keys(64, seed=5)
        got, found = client.query(keys, default=0xDEAD)
        assert not found.any()
        assert (got == 0xDEAD).all()

    def test_erase_then_query(self, client):
        keys = unique_keys(512, seed=6)
        values = random_values(512, seed=7)
        client.insert(keys, values)
        erased = client.erase(keys[:256])
        assert erased.all()
        _got, found = client.query(keys)
        assert not found[:256].any()
        assert found[256:].all()

    def test_empty_batches_round_trip(self, client):
        empty = np.empty(0, dtype=np.uint32)
        assert client.insert(empty, empty) == 0
        values, found = client.query(empty)
        assert values.size == 0 and found.size == 0
        assert client.erase(empty).size == 0

    def test_presplit_and_plain_agree(self, server):
        keys = unique_keys(4096, seed=8)
        values = random_values(4096, seed=9)
        with KVClient(server.address, name="presplit") as pre:
            pre.insert(keys, values)
            split_values, split_found = pre.query(keys)
        with KVClient(server.address, name="plain", presplit=False) as plain:
            plain_values, plain_found = plain.query(keys)
        assert split_found.all() and plain_found.all()
        assert np.array_equal(split_values, plain_values)
        assert np.array_equal(split_values, values)

    def test_hello_learns_topology(self, server, client):
        assert client.num_gpus == server.table.num_gpus
        assert client.server_cache_enabled is True


class TestCacheCoherence:
    def test_repeat_queries_hit_the_cache(self, server, client):
        keys = unique_keys(256, seed=10)
        values = random_values(256, seed=11)
        client.insert(keys, values)
        for _ in range(3):
            got, found = client.query(keys)
            assert found.all() and np.array_equal(got, values)
        assert server.stats.get("serve.cache.hits") > 0

    def test_insert_invalidates_stale_values(self, server, client):
        keys = unique_keys(128, seed=12)
        values = random_values(128, seed=13)
        client.insert(keys, values)
        client.query(keys)  # warm the tier
        client.query(keys)
        client.insert(keys, values + 1)  # overwrite through the server
        got, found = client.query(keys)
        assert found.all()
        assert np.array_equal(got, values + 1), "served stale cached values"

    def test_erase_invalidates_cached_keys(self, server, client):
        keys = unique_keys(128, seed=14)
        values = random_values(128, seed=15)
        client.insert(keys, values)
        client.query(keys)
        client.query(keys)
        client.erase(keys)
        got, found = client.query(keys, default=7)
        assert not found.any()
        assert (got == 7).all()

    def test_cache_off_server_reports_no_tier(self):
        srv = KVServer.create(num_gpus=2, capacity=1 << 12, cache=False).start()
        try:
            with KVClient(srv.address, name="nocache") as c:
                assert c.server_cache_enabled is False
                keys = unique_keys(64, seed=16)
                c.insert(keys, keys)
                c.query(keys)
                c.query(keys)
            assert srv.stats.get("serve.cache.hits") == 0
            assert "cache" not in srv.snapshot()
        finally:
            srv.close()


class TestAccountingSurfaces:
    def test_counters_and_snapshot(self, server, client):
        keys = unique_keys(256, seed=17)
        client.insert(keys, keys)
        client.query(keys)
        client.erase(keys[:10])
        counters = server.stats.snapshot()
        assert counters["serve.connections"] >= 1
        assert counters["serve.ops.insert"] == 256
        assert counters["serve.ops.query"] == 256
        assert counters["serve.ops.erase"] == 10
        assert counters["serve.batches"] >= 3
        assert counters["serve.client.it-client.ops"] == 522
        snap = server.snapshot()
        assert snap["table"]["size"] == 246  # 256 inserted - 10 erased
        assert snap["admission"]["in_flight_bytes"] == 0
        assert snap["cache"]["capacity"] == 512

    def test_stats_frame_matches_server_snapshot(self, server, client):
        import time

        keys = unique_keys(64, seed=18)
        client.insert(keys, keys)
        # the reply races the counter bump by a few microseconds
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            over_the_wire = client.stats()
            if over_the_wire["counters"].get("serve.ops.insert") == 64:
                break
            time.sleep(0.01)
        assert over_the_wire["table"]["size"] == len(server.table)
        assert over_the_wire["counters"]["serve.ops.insert"] == 64

    def test_reconnect_under_same_name_is_counted(self, server):
        with KVClient(server.address, name="bouncer") as c:
            c.query(unique_keys(8, seed=19))
        with KVClient(server.address, name="bouncer"):
            pass
        assert server.stats.get("serve.reconnect") == 1

    def test_report_carries_cache_split(self, server):
        """The coalescer stamps CascadeReport with the batch's
        hit/miss split — visible through the table's own report path."""
        cache = server.cache
        assert isinstance(cache, HotKeyCache)
        keys = unique_keys(128, seed=20)
        with KVClient(server.address, name="split") as c:
            c.insert(keys, keys)
            c.query(keys)  # all misses, sketch warms
            c.query(keys)  # sampled keys cross promote_after and admit
            c.query(keys)  # resident keys hit
        stats = cache.stats()
        assert stats.misses >= 128
        assert stats.hits >= 1


class TestLifecycle:
    def test_shutdown_frame_closes_server(self, server):
        client = KVClient(server.address, name="closer")
        client.shutdown_server()
        assert server.wait(timeout=5.0)

    def test_context_manager_cycle(self):
        with KVServer.create(num_gpus=2, capacity=1 << 12) as srv:
            with KVClient(srv.address) as c:
                keys = unique_keys(16, seed=21)
                assert c.insert(keys, keys) == 16

    def test_double_start_rejected(self, server):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            server.start()
