"""Wire-protocol properties: round-trips, limits, malformed rejection.

Every codec must satisfy ``decode(encode(x)) == x`` across the whole
legal input space — including the empty batch and the ``MAX_BATCH``
ceiling — and every illegal header byte pattern must raise a typed
:class:`ProtocolError` *before* any payload is trusted.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.serve.protocol import (
    HEADER_BYTES,
    MAGIC,
    MAX_BATCH,
    MAX_PAYLOAD,
    VERSION,
    ErrorCode,
    Frame,
    FrameType,
    ProtocolError,
    decode_erase,
    decode_erase_reply,
    decode_error,
    decode_header,
    decode_hello,
    decode_hello_reply,
    decode_insert,
    decode_insert_reply,
    decode_query,
    decode_query_reply,
    encode_erase,
    encode_erase_reply,
    encode_error,
    encode_frame,
    encode_hello,
    encode_hello_reply,
    encode_insert,
    encode_insert_reply,
    encode_query,
    encode_query_reply,
    read_frame,
    recv_exact,
    write_frame,
)

u32 = st.integers(0, 2**32 - 1)


def _u32_arrays(max_size: int = 64):
    return st.lists(u32, max_size=max_size).map(
        lambda xs: np.array(xs, dtype=np.uint32)
    )


class TestFrameRoundTrip:
    @given(
        ftype=st.sampled_from(list(FrameType)),
        request_id=u32,
        payload=st.binary(max_size=256),
    )
    @examples(50)
    def test_header_round_trip(self, ftype, request_id, payload):
        raw = encode_frame(Frame(ftype, request_id, payload))
        got_type, got_id, got_len = decode_header(raw[:HEADER_BYTES])
        assert got_type == ftype
        assert got_id == request_id
        assert got_len == len(payload)
        assert raw[HEADER_BYTES:] == payload

    def test_over_limit_payload_refused_at_encode(self):
        frame = Frame(FrameType.INSERT, 1, b"x" * (MAX_PAYLOAD + 1))
        with pytest.raises(ProtocolError) as err:
            encode_frame(frame)
        assert err.value.code == ErrorCode.TOO_LARGE

    def test_socket_round_trip(self):
        a, b = socket.socketpair()
        try:
            frame = Frame(FrameType.QUERY, 77, b"payload-bytes")
            write_frame(a, frame)
            assert read_frame(b) == frame
        finally:
            a.close()
            b.close()


class TestPayloadCodecs:
    @given(data=st.data())
    @examples(50)
    def test_insert_round_trip(self, data):
        keys = data.draw(_u32_arrays(), label="keys")
        values = data.draw(
            st.lists(u32, min_size=keys.size, max_size=keys.size).map(
                lambda xs: np.array(xs, dtype=np.uint32)
            ),
            label="values",
        )
        got_keys, got_values = decode_insert(encode_insert(keys, values))
        assert np.array_equal(got_keys, keys)
        assert np.array_equal(got_values, values)

    @given(keys=_u32_arrays(), default=u32)
    @examples(50)
    def test_query_round_trip(self, keys, default):
        got_keys, got_default = decode_query(
            encode_query(keys, default=default)
        )
        assert np.array_equal(got_keys, keys)
        assert got_default == default

    @given(keys=_u32_arrays())
    @examples(30)
    def test_erase_round_trip(self, keys):
        assert np.array_equal(decode_erase(encode_erase(keys)), keys)

    @given(data=st.data())
    @examples(30)
    def test_reply_round_trips(self, data):
        values = data.draw(_u32_arrays(), label="values")
        found = data.draw(
            st.lists(
                st.booleans(), min_size=values.size, max_size=values.size
            ).map(lambda xs: np.array(xs, dtype=bool)),
            label="found",
        )
        got_values, got_found = decode_query_reply(
            encode_query_reply(values, found)
        )
        assert np.array_equal(got_values, values)
        assert np.array_equal(got_found, found)
        assert np.array_equal(
            decode_erase_reply(encode_erase_reply(found)), found
        )
        count = data.draw(u32, label="count")
        assert decode_insert_reply(encode_insert_reply(count)) == count

    def test_empty_batches_are_legal(self):
        empty = np.empty(0, dtype=np.uint32)
        keys, values = decode_insert(encode_insert(empty, empty))
        assert keys.size == 0 and values.size == 0
        keys, default = decode_query(encode_query(empty, default=9))
        assert keys.size == 0 and default == 9
        assert decode_erase(encode_erase(empty)).size == 0

    def test_max_batch_round_trips(self):
        keys = np.arange(MAX_BATCH, dtype=np.uint32)
        values = keys[::-1].copy()
        payload = encode_insert(keys, values)
        assert len(payload) <= MAX_PAYLOAD
        got_keys, got_values = decode_insert(payload)
        assert np.array_equal(got_keys, keys)
        assert np.array_equal(got_values, values)

    def test_over_max_batch_refused(self):
        keys = np.zeros(MAX_BATCH + 1, dtype=np.uint32)
        with pytest.raises(ProtocolError) as err:
            encode_query(keys)
        assert err.value.code == ErrorCode.TOO_LARGE

    def test_hello_round_trips(self):
        assert decode_hello(encode_hello("client-α")) == "client-α"
        num, cached = decode_hello_reply(
            encode_hello_reply(8, cache_enabled=True)
        )
        assert num == 8 and cached is True

    @given(
        code=st.sampled_from(list(ErrorCode)), message=st.text(max_size=64)
    )
    @examples(30)
    def test_error_round_trip(self, code, message):
        got_code, got_message = decode_error(encode_error(code, message))
        assert got_code == code
        assert got_message == message


class TestMalformedHeaders:
    """Every corrupt header byte pattern is rejected before the payload."""

    def _header(self, magic=MAGIC, version=VERSION, ftype=1, rid=0, length=0):
        return struct.pack("<HBBII", magic, version, ftype, rid, length)

    def test_bad_magic(self):
        with pytest.raises(ProtocolError, match="bad magic"):
            decode_header(self._header(magic=0xDEAD))

    def test_bad_version(self):
        with pytest.raises(ProtocolError, match="version"):
            decode_header(self._header(version=VERSION + 1))

    def test_unknown_frame_type(self):
        with pytest.raises(ProtocolError, match="frame type"):
            decode_header(self._header(ftype=200))

    def test_oversize_length(self):
        with pytest.raises(ProtocolError) as err:
            decode_header(self._header(length=MAX_PAYLOAD + 1))
        assert err.value.code == ErrorCode.TOO_LARGE

    def test_short_header(self):
        with pytest.raises(ProtocolError, match="header"):
            decode_header(b"\x00" * (HEADER_BYTES - 1))

    @given(noise=st.binary(min_size=HEADER_BYTES, max_size=HEADER_BYTES))
    @examples(100)
    def test_random_noise_never_validates_silently(self, noise):
        """Arbitrary bytes either raise or genuinely carry the magic."""
        try:
            decode_header(noise)
        except ProtocolError:
            return
        magic, version = struct.unpack_from("<HB", noise)
        assert magic == MAGIC and version == VERSION

    def test_truncated_payload_in_intact_frame(self):
        payload = encode_insert(
            np.arange(4, dtype=np.uint32), np.arange(4, dtype=np.uint32)
        )
        with pytest.raises(ProtocolError, match="truncated"):
            decode_insert(payload[:-3])
        with pytest.raises(ProtocolError, match="count"):
            decode_insert(b"\x01")


class TestRecvExact:
    def test_clean_eof_is_distinguished_from_truncation(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(ProtocolError, match="connection closed"):
            recv_exact(b, 4)
        b.close()

    def test_mid_frame_eof_reports_truncation(self):
        a, b = socket.socketpair()
        a.sendall(b"\x01\x02")
        a.close()
        with pytest.raises(ProtocolError, match="truncated frame"):
            recv_exact(b, 4)
        b.close()

    def test_chunked_delivery_reassembles(self):
        a, b = socket.socketpair()
        payload = bytes(range(64))

        def drip():
            for i in range(0, len(payload), 7):
                a.sendall(payload[i : i + 7])

        thread = threading.Thread(target=drip)
        thread.start()
        got = recv_exact(b, len(payload))
        thread.join()
        assert got == payload
        a.close()
        b.close()
