"""Soak test: concurrent clients vs a serial replay of the op log.

The coalescer executes every mutation batch on one thread, so the
server's op log is a *total order* over all clients' inserts and
erases.  The contract under soak: after any concurrent run, replaying
that log serially into a fresh table produces a **bit-identical** final
table — same pairs, same values, nothing lost, duplicated, or
reordered within a batch.

The tier-1 variant drives thread-backed clients; the slow variant runs
real client *processes* against the unix socket.
"""

from __future__ import annotations

import multiprocessing
import threading

import numpy as np
import pytest

from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.serve import KVClient, KVServer
from repro.workloads.distributions import random_values, unique_keys


def _sorted_pairs(table: DistributedHashTable):
    keys, values = table.export()
    order = np.lexsort((values, keys))
    return keys[order], values[order]


def _replay(oplog, *, num_gpus: int, capacity: int):
    fresh = DistributedHashTable(p100_nvlink_node(num_gpus), capacity)
    try:
        for op, keys, values in oplog:
            if op == "insert":
                fresh.insert(keys, values)
            else:
                fresh.erase(keys)
        return _sorted_pairs(fresh)
    finally:
        fresh.free()


def _client_script(name: str, seed: int, batches: int, batch_size: int):
    """A deterministic mixed insert/query/erase schedule for one client."""
    rng = np.random.default_rng(seed)
    plan = []
    for b in range(batches):
        keys = unique_keys(batch_size, seed=seed * 1000 + b)
        values = random_values(batch_size, seed=seed * 2000 + b)
        plan.append(("insert", keys, values))
        plan.append(("query", keys, None))
        erase_n = int(batch_size * rng.uniform(0.1, 0.5))
        plan.append(("erase", keys[:erase_n], None))
    return plan


def _run_script(address, name, plan, errors=None):
    try:
        with KVClient(address, name=name, retry_overloaded=8) as client:
            for op, keys, values in plan:
                if op == "insert":
                    client.insert(keys, values)
                elif op == "query":
                    client.query(keys)
                else:
                    client.erase(keys)
    except BaseException as exc:
        if errors is None:
            raise
        errors.append(exc)


def _soak(server, *, clients: int, batches: int, batch_size: int):
    errors: list[BaseException] = []
    threads = [
        threading.Thread(
            target=_run_script,
            args=(
                server.address,
                f"soak-{c}",
                _client_script(f"soak-{c}", seed=c + 1, batches=batches,
                               batch_size=batch_size),
                errors,
            ),
            daemon=True,
        )
        for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, errors


class TestSoakSerialReplay:
    def test_concurrent_clients_replay_bit_identical(self):
        """Tier-1 small soak: 3 thread clients, mixed mutations."""
        server = KVServer.create(
            num_gpus=4, capacity=1 << 14, oplog=True, batch_window=0.001
        ).start()
        try:
            _soak(server, clients=3, batches=4, batch_size=512)
            live_keys, live_values = _sorted_pairs(server.table)
            replay_keys, replay_values = _replay(
                server.oplog, num_gpus=4, capacity=1 << 14
            )
        finally:
            server.close()
        assert np.array_equal(live_keys, replay_keys)
        assert np.array_equal(live_values, replay_values)

    def test_oplog_batches_are_coalesced_units(self):
        """Each log entry is one executed cascade: key counts in the
        log sum to the keys the counters saw."""
        server = KVServer.create(
            num_gpus=2, capacity=1 << 13, oplog=True
        ).start()
        try:
            _soak(server, clients=2, batches=3, batch_size=256)
            logged = sum(int(k.size) for _op, k, _v in server.oplog)
            counters = server.stats.snapshot()
            assert logged == (
                counters["serve.ops.insert"] + counters["serve.ops.erase"]
            )
        finally:
            server.close()

    def test_cache_on_and_off_soaks_agree(self):
        """The cache tier must be invisible to the final table state."""
        finals = []
        for cache in (False, True):
            server = KVServer.create(
                num_gpus=4, capacity=1 << 14, cache=cache,
                cache_size=256, oplog=True,
            ).start()
            try:
                _soak(server, clients=2, batches=3, batch_size=512)
                finals.append(_sorted_pairs(server.table))
            finally:
                server.close()
        (off_keys, off_values), (on_keys, on_values) = finals
        assert np.array_equal(off_keys, on_keys)
        assert np.array_equal(off_values, on_values)


def _process_client(address, name, seed, batches, batch_size):
    plan = _client_script(name, seed=seed, batches=batches,
                          batch_size=batch_size)
    _run_script(address, name, plan)


class TestSoakMultiProcess:
    @pytest.mark.slow
    def test_soak_with_process_clients_replays_bit_identical(self):
        """Real client processes over the unix socket (the multi-user
        deployment shape), then the same serial-replay identity."""
        server = KVServer.create(
            num_gpus=4, capacity=1 << 15, oplog=True, batch_window=0.002
        ).start()
        try:
            ctx = multiprocessing.get_context("spawn")
            procs = [
                ctx.Process(
                    target=_process_client,
                    args=(server.address, f"proc-{i}", i + 1, 4, 1024),
                )
                for i in range(4)
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join(timeout=180)
            assert all(proc.exitcode == 0 for proc in procs), [
                proc.exitcode for proc in procs
            ]
            live = _sorted_pairs(server.table)
            replayed = _replay(server.oplog, num_gpus=4, capacity=1 << 15)
        finally:
            server.close()
        assert np.array_equal(live[0], replayed[0])
        assert np.array_equal(live[1], replayed[1])
