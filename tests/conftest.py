"""Shared fixtures and Hypothesis profile selection for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import settings

# conftest is imported before pytest puts tests/ on sys.path, so the
# shared profiles module must be made importable by hand.
sys.path.insert(0, str(Path(__file__).resolve().parent))

from profiles import active_profile, register_profiles
from repro.perfmodel.specs import P100
from repro.simt.device import Device
from repro.workloads.distributions import random_values, unique_keys

register_profiles()
settings.load_profile(active_profile())


@pytest.fixture(autouse=True)
def _deterministic_seeds():
    """Pin the global PRNGs per test so non-Hypothesis randomness replays."""
    random.seed(0xC0FFEE)
    np.random.seed(0xC0FFEE)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_keys() -> np.ndarray:
    """1024 distinct keys in a deterministic shuffled order."""
    return unique_keys(1024, seed=7)


@pytest.fixture
def small_values(small_keys) -> np.ndarray:
    return random_values(small_keys.shape[0], seed=8)


@pytest.fixture
def medium_keys() -> np.ndarray:
    """16384 distinct keys."""
    return unique_keys(1 << 14, seed=9)


@pytest.fixture
def medium_values(medium_keys) -> np.ndarray:
    return random_values(medium_keys.shape[0], seed=10)


@pytest.fixture
def p100_device() -> Device:
    return Device(0, P100)
