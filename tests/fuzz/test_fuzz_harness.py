"""Differential fuzz runs: clean-tree certification, seeded-fault
discovery, shrinking, and deterministic replay.

These run outside tier-1 (``-m fuzz``; ``make fuzz-smoke`` budgets a
60-second pass).  The cheap harness-internal unit tests live in
``tests/sanitize/test_fuzz_unit.py``.
"""

from pathlib import Path

import pytest

from repro.sanitize.fuzz import replay_seed, run_fuzz
from repro.sanitize.inject import INJECTIONS

pytestmark = pytest.mark.fuzz

SEED_CORPUS = Path(__file__).parent / "corpus.json"

#: cases given to each injection before declaring it missed; every
#: seeded fault is reliably discovered well under this (measured <25)
DISCOVERY_BUDGET = 60


class TestCleanTree:
    def test_thirty_clean_cases_have_no_mismatches(self):
        result = run_fuzz(max_cases=30, shrink_failures=False)
        assert result.ok, result.format()

    def test_budgeted_run_respects_the_clock(self):
        result = run_fuzz(budget_seconds=3.0)
        assert result.cases_run > 0
        # one in-flight case may overshoot; the loop must not start more
        assert result.elapsed < 3.0 + 10.0

    def test_committed_seed_corpus_replays_clean(self):
        from repro.sanitize.fuzz import FuzzCase, load_corpus, run_case

        entries = load_corpus(SEED_CORPUS)["entries"]
        assert entries, "seed corpus missing — regenerate with `repro fuzz`"
        for entry in entries:
            case = FuzzCase.from_dict(entry["case"])
            failure = run_case(case)
            assert failure is None, failure.message()


class TestInjectionDiscovery:
    @pytest.mark.parametrize("name", sorted(INJECTIONS))
    def test_injected_fault_is_found_at_expected_check(self, name):
        spec = INJECTIONS[name]
        result = run_fuzz(
            max_cases=DISCOVERY_BUDGET, inject=name,
            shrink_failures=False, stop_on_failure=True,
        )
        assert result.failures, f"{name}: not found in {DISCOVERY_BUDGET} cases"
        assert result.failures[0].check == spec.expected_check, (
            result.failures[0].message()
        )

    def test_injection_restores_the_fast_path(self):
        """After the context exits, the clean tree is clean again."""
        result = run_fuzz(
            max_cases=DISCOVERY_BUDGET, inject="multisplit-unstable",
            shrink_failures=False, stop_on_failure=True,
        )
        seed = result.failures[0].case.seed
        assert replay_seed(seed) is None  # no lingering patch


class TestShrinkAndReplay:
    def _find(self, name):
        result = run_fuzz(
            max_cases=DISCOVERY_BUDGET, inject=name,
            shrink_failures=False, stop_on_failure=True,
        )
        assert result.failures
        return result.failures[0]

    def test_replay_is_deterministic(self):
        failure = self._find("query-tombstone-skip")
        first = replay_seed(failure.case.seed, inject="query-tombstone-skip")
        second = replay_seed(failure.case.seed, inject="query-tombstone-skip")
        assert first is not None and second is not None
        assert (first.check, first.detail) == (second.check, second.detail)
        assert (first.check, first.detail) == (failure.check, failure.detail)

    def test_shrinking_preserves_the_failing_check(self):
        from repro.sanitize.fuzz import shrink

        failure = self._find("erase-early-stop")
        with INJECTIONS["erase-early-stop"].apply():
            shrunk = shrink(failure, max_attempts=15)
            smaller_failure = (
                None if shrunk == failure.case else run_case_checked(shrunk)
            )
        if shrunk != failure.case:
            assert smaller_failure is not None
            assert smaller_failure.check == failure.check

    def test_corpus_records_the_failure_for_replay(self, tmp_path):
        corpus = tmp_path / "corpus.json"
        run_fuzz(
            max_cases=DISCOVERY_BUDGET, inject="multisplit-unstable",
            corpus_path=corpus, stop_on_failure=True, shrink_failures=False,
        )
        from repro.sanitize.fuzz import FuzzCase, load_corpus

        entries = load_corpus(corpus)["entries"]
        failing = [e for e in entries if e["status"] == "fail"]
        assert failing and failing[0]["inject"] == "multisplit-unstable"
        case = FuzzCase.from_dict(failing[0]["case"])
        with INJECTIONS["multisplit-unstable"].apply():
            assert run_case_checked(case) is not None


def run_case_checked(case):
    from repro.sanitize.fuzz import run_case

    return run_case(case)
