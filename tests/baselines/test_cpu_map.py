"""Tests for the Folklore-style CPU baseline."""

import numpy as np
import pytest

from repro.baselines.cpu_map import CACHE_LINE_BYTES, FolkloreCpuMap
from repro.errors import CapacityError, ConfigurationError
from repro.workloads.distributions import random_values, unique_keys


class TestBasics:
    @pytest.mark.parametrize("load", [0.5, 0.9])
    def test_roundtrip(self, load):
        n = 1 << 12
        t = FolkloreCpuMap.for_load_factor(n, load, seed=1)
        keys = unique_keys(n, seed=2)
        values = random_values(n, seed=3)
        t.insert(keys, values)
        got, found = t.query(keys)
        assert found.all() and (got == values).all()
        assert len(t) == n

    def test_update(self):
        t = FolkloreCpuMap(128, seed=4)
        k = np.array([7, 8], dtype=np.uint32)
        t.insert(k, np.array([1, 2], dtype=np.uint32))
        t.insert(k, np.array([3, 4], dtype=np.uint32))
        got, _ = t.query(k)
        assert got.tolist() == [3, 4]
        assert len(t) == 2

    def test_absent(self):
        t = FolkloreCpuMap(128, seed=5)
        keys = unique_keys(64, seed=6)
        t.insert(keys, keys)
        _, found = t.query(np.array([0xFFFFFF00], dtype=np.uint32))
        assert not found.any()

    def test_duplicate_keys_in_one_batch_last_wins(self):
        t = FolkloreCpuMap(64, seed=7)
        keys = np.array([5, 5, 5], dtype=np.uint32)
        t.insert(keys, np.array([1, 2, 3], dtype=np.uint32))
        got, _ = t.query(np.array([5], dtype=np.uint32))
        assert got[0] == 3
        assert len(t) == 1

    def test_full_table_raises(self):
        t = FolkloreCpuMap(32, seed=8, max_probes=64)
        keys = unique_keys(64, seed=9)
        with pytest.raises(CapacityError):
            t.insert(keys, keys)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            FolkloreCpuMap(0)


class TestCacheLineAccounting:
    def test_line_charges_reward_linear_probing(self):
        """§II: linear probing is cache-efficient — probing l consecutive
        slots costs ~1 + l/8 cache lines, far less than l random sectors."""
        n = 1 << 12
        t = FolkloreCpuMap.for_load_factor(n, 0.9, seed=10)
        keys = unique_keys(n, seed=11)
        rep = t.insert(keys, keys)
        assert rep.load_sectors < rep.total_windows  # lines << probes
        assert rep.load_sectors >= n  # at least one line per op

    def test_line_math(self):
        home = np.zeros(3, dtype=np.int64)
        probes = np.array([1, 8, 9], dtype=np.int64)
        # 1 probe -> 1 line; 8 probes -> 2 lines; 9 -> 2 lines
        assert FolkloreCpuMap._line_charges(home, probes) == 1 + 2 + 2

    def test_cache_line_constant(self):
        assert CACHE_LINE_BYTES == 64
