"""Tests for the CUDPP-style cuckoo baseline."""

import numpy as np
import pytest

from repro.baselines.cudpp_cuckoo import CudppCuckooTable
from repro.errors import ConfigurationError, CuckooEvictionError
from repro.workloads.distributions import random_values, unique_keys


class TestConstruction:
    def test_load_cap_enforced(self):
        """§V-B: 'CUDPP is constrained to a maximum load of 97%'."""
        with pytest.raises(ConfigurationError):
            CudppCuckooTable.for_load_factor(100, 0.98)
        t = CudppCuckooTable.for_load_factor(100, 0.97)
        assert t.capacity >= 103

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CudppCuckooTable(0)
        with pytest.raises(ConfigurationError):
            CudppCuckooTable(10, num_hashes=1)

    def test_four_hash_functions_by_default(self):
        assert len(CudppCuckooTable(100).hashes) == 4


class TestInsertQuery:
    @pytest.mark.parametrize("load", [0.5, 0.8, 0.95])
    def test_roundtrip(self, load):
        n = 1 << 12
        t = CudppCuckooTable.for_load_factor(n, load, seed=1)
        keys = unique_keys(n, seed=2)
        values = random_values(n, seed=3)
        t.insert(keys, values)
        got, found = t.query(keys)
        assert found.all() and (got == values).all()
        assert len(t) == n

    def test_absent_keys(self):
        n = 1 << 10
        t = CudppCuckooTable.for_load_factor(n, 0.8, seed=4)
        keys = unique_keys(n, seed=5)
        t.insert(keys, keys)
        pool = unique_keys(2 * n, seed=6)
        absent = pool[~np.isin(pool, keys)][:100]
        got, found = t.query(absent, default=9)
        assert not found.any() and (got == 9).all()

    def test_every_key_at_one_of_its_hash_positions_or_stash(self):
        """Cuckoo invariant: a stored key sits at h_i(k) for some i."""
        n = 1 << 10
        t = CudppCuckooTable.for_load_factor(n, 0.9, seed=7)
        keys = unique_keys(n, seed=8)
        t.insert(keys, keys)
        from repro.constants import EMPTY_SLOT

        live_idx = np.flatnonzero(t.slots != EMPTY_SLOT)
        live_keys = (t.slots[live_idx] >> np.uint64(32)).astype(np.uint32)
        for idx, key in zip(live_idx[:200], live_keys[:200]):
            positions = [
                int(h(np.array([key], dtype=np.uint32))[0]) % t.capacity
                for h in t.hashes
            ]
            assert idx in positions

    def test_chain_lengths_grow_with_load(self):
        n = 1 << 12
        keys = unique_keys(n, seed=9)
        means = []
        for load in (0.5, 0.95):
            t = CudppCuckooTable.for_load_factor(n, load, seed=10)
            rep = t.insert(keys, keys)
            means.append(rep.mean_windows)
        assert means[1] > means[0]

    def test_over_capacity_rejected(self):
        t = CudppCuckooTable(100, seed=11)
        keys = unique_keys(99, seed=12)
        with pytest.raises(CuckooEvictionError):
            t.insert(keys, keys)

    def test_empty_insert(self):
        t = CudppCuckooTable(16)
        rep = t.insert(np.array([], dtype=np.uint32), np.array([], dtype=np.uint32))
        assert rep.num_ops == 0

    def test_export(self):
        n = 256
        t = CudppCuckooTable.for_load_factor(n, 0.8, seed=13)
        keys = unique_keys(n, seed=14)
        t.insert(keys, keys * 0 + 5)
        k, v = t.export()
        assert np.sort(k).tolist() == np.sort(keys).tolist()
        assert (v == 5).all()


class TestCosts:
    def test_per_thread_uncoalesced_accounting(self):
        """Every cuckoo access is a single-slot (1-sector) transaction;
        insert chains pay one exchange (load+store) per step."""
        n = 1 << 10
        t = CudppCuckooTable.for_load_factor(n, 0.8, seed=15)
        keys = unique_keys(n, seed=16)
        rep = t.insert(keys, keys)
        assert rep.load_sectors >= rep.total_windows
        assert rep.cas_attempts == rep.total_windows

    def test_query_probes_bounded_by_num_hashes(self):
        n = 1 << 10
        t = CudppCuckooTable.for_load_factor(n, 0.9, seed=17)
        keys = unique_keys(n, seed=18)
        t.insert(keys, keys)
        t.query(keys)
        assert t.last_report.max_windows <= t.num_hashes
