"""Tests for the Robin Hood (García et al.) baseline."""

import numpy as np
import pytest

from repro.baselines.robinhood import MAX_AGE, RobinHoodTable
from repro.constants import EMPTY_SLOT
from repro.errors import ConfigurationError
from repro.workloads.distributions import random_values, unique_keys


class TestBasics:
    @pytest.mark.parametrize("load", [0.5, 0.8, 0.9, 0.95])
    def test_roundtrip(self, load):
        n = 1 << 12
        t = RobinHoodTable.for_load_factor(n, load, seed=1)
        keys = unique_keys(n, seed=2)
        values = random_values(n, seed=3)
        t.insert(keys, values)
        got, found = t.query(keys)
        assert found.all() and (got == values).all()

    def test_absent(self):
        n = 1 << 10
        t = RobinHoodTable.for_load_factor(n, 0.8, seed=4)
        keys = unique_keys(n, seed=5)
        t.insert(keys, keys)
        pool = unique_keys(2 * n, seed=6)
        absent = pool[~np.isin(pool, keys)][:200]
        _, found = t.query(absent)
        assert not found.any()

    def test_update_semantics(self):
        t = RobinHoodTable.for_load_factor(1 << 10, 0.7, seed=7)
        keys = unique_keys(1 << 10, seed=8)
        t.insert(keys, keys)
        t.insert(keys[:32], (keys[:32] + 1).astype(np.uint32))
        got, _ = t.query(keys[:32])
        assert (got == keys[:32] + 1).all()
        assert len(t) == 1 << 10

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RobinHoodTable(0)


class TestAgeInvariants:
    def test_ages_fit_four_bits(self):
        """García's 4-bit age indicator caps displacement at 15."""
        n = 1 << 12
        t = RobinHoodTable.for_load_factor(n, 0.95, seed=9)
        keys = unique_keys(n, seed=10)
        t.insert(keys, keys)
        live = t.slots != EMPTY_SLOT
        assert int(t.ages[live].max()) <= MAX_AGE

    def test_stored_age_matches_position(self):
        """Invariant: a pair with age a sits at H_a(key)."""
        n = 1 << 10
        t = RobinHoodTable.for_load_factor(n, 0.9, seed=11)
        keys = unique_keys(n, seed=12)
        t.insert(keys, keys)
        live_idx = np.flatnonzero(t.slots != EMPTY_SLOT)[:300]
        for idx in live_idx:
            key = np.uint32(int(t.slots[idx]) >> 32)
            age = int(t.ages[idx])
            pos = int(t._pos(np.array([key], dtype=np.uint32), age)[0])
            assert pos == idx

    def test_mean_age_grows_with_load(self):
        n = 1 << 12
        keys = unique_keys(n, seed=13)
        means = []
        for load in (0.5, 0.9):
            t = RobinHoodTable.for_load_factor(n, load, seed=14)
            rep = t.insert(keys, keys)
            live = t.slots != EMPTY_SLOT
            means.append(float(t.ages[live].mean()))
        assert means[1] > means[0]

    def test_query_probe_bounded_by_max_age(self):
        n = 1 << 11
        t = RobinHoodTable.for_load_factor(n, 0.9, seed=15)
        keys = unique_keys(n, seed=16)
        t.insert(keys, keys)
        t.query(keys)
        assert t.last_report.max_windows <= MAX_AGE + 1

    def test_export(self):
        n = 512
        t = RobinHoodTable.for_load_factor(n, 0.7, seed=17)
        keys = unique_keys(n, seed=18)
        t.insert(keys, keys)
        k, _ = t.export()
        assert np.sort(k).tolist() == np.sort(keys).tolist()
