"""Tests for the Stadium hashing baseline."""

import numpy as np
import pytest

from repro.baselines.stadium import StadiumHashTable
from repro.errors import CapacityError, ConfigurationError
from repro.utils.primes import is_prime
from repro.workloads.distributions import random_values, unique_keys


class TestBasics:
    @pytest.mark.parametrize("load", [0.5, 0.8, 0.9])
    def test_roundtrip(self, load):
        n = 1 << 12
        t = StadiumHashTable.for_load_factor(n, load, seed=1)
        keys = unique_keys(n, seed=2)
        values = random_values(n, seed=3)
        t.insert(keys, values)
        got, found = t.query(keys)
        assert found.all() and (got == values).all()

    def test_capacity_rounded_to_prime(self):
        t = StadiumHashTable(1000)
        assert is_prime(t.capacity)
        assert t.capacity >= 1000

    def test_absent_keys(self):
        n = 1 << 10
        t = StadiumHashTable.for_load_factor(n, 0.8, seed=4)
        keys = unique_keys(n, seed=5)
        t.insert(keys, keys)
        pool = unique_keys(2 * n, seed=6)
        absent = pool[~np.isin(pool, keys)][:200]
        _, found = t.query(absent)
        assert not found.any()

    def test_over_capacity(self):
        t = StadiumHashTable(64)
        keys = unique_keys(200, seed=7)
        with pytest.raises(CapacityError):
            t.insert(keys, keys)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            StadiumHashTable(0)


class TestTicketBoard:
    def test_tickets_track_occupancy(self):
        n = 512
        t = StadiumHashTable.for_load_factor(n, 0.7, seed=8)
        keys = unique_keys(n, seed=9)
        t.insert(keys, keys)
        from repro.constants import EMPTY_SLOT

        assert (t.tickets == (t.slots != EMPTY_SLOT)).all()

    def test_info_bits_filter_table_reads(self):
        """Most probes resolve on the ticket board: table loads are far
        fewer than ticket loads for queries of absent keys."""
        n = 1 << 11
        t = StadiumHashTable.for_load_factor(n, 0.8, seed=10)
        keys = unique_keys(n, seed=11)
        t.insert(keys, keys)
        pool = unique_keys(4 * n, seed=12)
        absent = pool[~np.isin(pool, keys)][:1000]
        t.query(absent)
        rep = t.last_report
        # in-core: table reads land in load_sectors too, so compare
        # signature-match rate: roughly 1/256 of probes hit the table
        assert rep.load_sectors < rep.total_windows * 1.2


class TestOutOfCore:
    def test_host_sectors_charged_when_out_of_core(self):
        n = 1 << 10
        t = StadiumHashTable.for_load_factor(n, 0.8, in_core=False, seed=13)
        keys = unique_keys(n, seed=14)
        rep = t.insert(keys, keys)
        assert rep.host_store_sectors == n  # one table write per pair
        assert rep.store_sectors > 0  # ticket writes stay in VRAM
        t.query(keys)
        qrep = t.last_report
        assert qrep.host_load_sectors >= n * 0.9  # real reads go over PCIe

    def test_in_core_charges_vram_only(self):
        n = 1 << 10
        t = StadiumHashTable.for_load_factor(n, 0.8, in_core=True, seed=15)
        keys = unique_keys(n, seed=16)
        rep = t.insert(keys, keys)
        assert rep.host_store_sectors == 0 and rep.host_load_sectors == 0

    def test_functional_results_identical_across_modes(self):
        n = 1 << 10
        keys = unique_keys(n, seed=17)
        values = random_values(n, seed=18)
        a = StadiumHashTable.for_load_factor(n, 0.8, in_core=True, seed=19)
        b = StadiumHashTable.for_load_factor(n, 0.8, in_core=False, seed=19)
        a.insert(keys, values)
        b.insert(keys, values)
        va, fa = a.query(keys)
        vb, fb = b.query(keys)
        assert (va == vb).all() and (fa == fb).all()
