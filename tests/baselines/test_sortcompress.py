"""Tests for the sort-and-compress store."""

import numpy as np
import pytest

from repro.baselines.sortcompress import SortCompressStore
from repro.errors import ConfigurationError
from repro.workloads.distributions import random_values, unique_keys, zipf_keys


class TestBuild:
    def test_sorted_invariant(self):
        keys = unique_keys(1000, seed=1)
        store = SortCompressStore(keys, keys)
        assert (np.diff(store.sorted_keys.astype(np.int64)) >= 0).all()
        assert (np.diff(store.unique_keys.astype(np.int64)) > 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SortCompressStore(np.array([], dtype=np.uint32), np.array([], dtype=np.uint32))

    def test_aux_memory_drawback(self):
        """§II: sorting needs O(n) auxiliary memory — half the capacity."""
        keys = unique_keys(1000, seed=2)
        store = SortCompressStore(keys, keys)
        assert store.aux_bytes == store.table_bytes

    def test_build_report_radix_passes(self):
        keys = unique_keys(1024, seed=3)
        store = SortCompressStore(keys, keys)
        # 4 radix passes (32-bit keys, 8-bit digits) + 1 compression
        # sweep, load and store each, plus the small per-pass digit scans
        sweep = int(np.ceil(1024 * 8 / 32))
        assert 5 * sweep <= store.build_report.load_sectors <= 7 * sweep
        assert 5 * sweep <= store.build_report.store_sectors <= 7 * sweep
        assert (store.build_report.probe_windows == 4).all()


class TestQuery:
    def test_roundtrip(self):
        keys = unique_keys(2000, seed=4)
        values = random_values(2000, seed=5)
        store = SortCompressStore(keys, values)
        got, found = store.query(keys)
        assert found.all() and (got == values).all()

    def test_absent(self):
        keys = unique_keys(100, seed=6)
        store = SortCompressStore(keys, keys)
        pool = unique_keys(400, seed=7)
        absent = pool[~np.isin(pool, keys)][:50]
        got, found = store.query(absent, default=3)
        assert not found.any() and (got == 3).all()

    def test_logarithmic_probe_count(self):
        keys = unique_keys(1 << 12, seed=8)
        store = SortCompressStore(keys, keys)
        store.query(keys[:10])
        assert store.last_report.mean_windows == pytest.approx(12, abs=1)

    def test_query_extremes(self):
        keys = np.array([10, 20, 30], dtype=np.uint32)
        store = SortCompressStore(keys, keys)
        got, found = store.query(np.array([5, 10, 30, 35], dtype=np.uint32))
        assert found.tolist() == [False, True, True, False]


class TestMultiValue:
    def test_multiplicity_and_values(self):
        keys = np.array([5, 5, 5, 9], dtype=np.uint32)
        values = np.array([1, 2, 3, 4], dtype=np.uint32)
        store = SortCompressStore(keys, values)
        assert store.multiplicity(5) == 3
        assert sorted(store.query_multi(5).tolist()) == [1, 2, 3]
        assert store.query_multi(9).tolist() == [4]
        assert store.multiplicity(7) == 0

    def test_last_key_run(self):
        """The run ending at the array's end must be handled."""
        keys = np.array([1, 2, 2], dtype=np.uint32)
        store = SortCompressStore(keys, np.array([9, 8, 7], dtype=np.uint32))
        assert store.multiplicity(2) == 2

    def test_zipf_stream(self):
        keys = zipf_keys(5000, s=1.5, universe=100, seed=9)
        store = SortCompressStore(keys, np.arange(5000, dtype=np.uint32))
        assert len(store) == np.unique(keys).size
        total = sum(store.multiplicity(int(k)) for k in store.unique_keys)
        assert total == 5000
