"""Tests for the CPU (Folklore) timing model."""

import numpy as np
import pytest

from repro.baselines.cpu_map import FolkloreCpuMap
from repro.core.report import KernelReport
from repro.perfmodel.cpu import cpu_kernel_seconds
from repro.perfmodel.memmodel import kernel_seconds, throughput
from repro.perfmodel.specs import P100, XEON_E5_2680V4_NODE
from repro.workloads.distributions import random_values, unique_keys


class TestCpuModel:
    def test_zero_ops_free(self):
        assert cpu_kernel_seconds(KernelReport(op="insert")) == 0.0

    def test_folklore_anchor(self):
        """Maier et al.: up to ~300 M inserts/s on the dual-socket node.
        The model should land within a factor of two of that at a
        moderate load."""
        n = 1 << 14
        t = FolkloreCpuMap.for_load_factor(n, 0.5, seed=1)
        rep = t.insert(unique_keys(n, seed=2), random_values(n, seed=3))
        rate = throughput(n, cpu_kernel_seconds(rep))
        assert 150e6 < rate < 600e6

    def test_gpu_beats_cpu_by_paper_margin(self):
        """The motivation for the whole paper: HBM2 over DDR4.  WarpDrive
        on a P100 should beat Folklore on the Xeon node by ~3-10x."""
        from repro.core.table import WarpDriveHashTable

        n = 1 << 14
        keys = unique_keys(n, seed=4)
        values = random_values(n, seed=5)

        cpu = FolkloreCpuMap.for_load_factor(n, 0.9, seed=6)
        cpu_rep = cpu.insert(keys, values)
        cpu_rate = throughput(n, cpu_kernel_seconds(cpu_rep))

        gpu = WarpDriveHashTable.for_load_factor(n, 0.9, group_size=4)
        gpu_rep = gpu.insert(keys, values)
        gpu_rate = throughput(n, kernel_seconds(gpu_rep, P100))

        assert 2.0 < gpu_rate / cpu_rate < 20.0

    def test_spec_effective_bandwidth(self):
        spec = XEON_E5_2680V4_NODE
        assert spec.effective_random_bandwidth == pytest.approx(
            spec.mem_bandwidth * spec.random_access_efficiency
        )
