"""Historical cross-checks of the perf model against older hardware.

§III quotes Alcantara's single-pass cuckoo reaching "up to 250 million
inserts per second on a GTX 470" at ~80% load.  Pointing the same
counts→seconds model at the Fermi-era spec should land in that era's
ballpark — a provenance check that the model is not a P100-only fit.
"""

import numpy as np
import pytest

from repro.baselines.cudpp_cuckoo import CudppCuckooTable
from repro.perfmodel.memmodel import kernel_seconds, throughput
from repro.perfmodel.specs import GTX470, P100
from repro.workloads.distributions import random_values, unique_keys


@pytest.fixture(scope="module")
def cuckoo_report():
    n = 1 << 14
    t = CudppCuckooTable.for_load_factor(n, 0.8, seed=1)
    rep = t.insert(unique_keys(n, seed=2), random_values(n, seed=3))
    return rep, n


class TestGtx470Anchor:
    def test_cuckoo_insert_rate_in_fermi_ballpark(self, cuckoo_report):
        """Alcantara: ~250 M inserts/s on a GTX 470 at 80% load."""
        rep, n = cuckoo_report
        rate = throughput(n, kernel_seconds(rep, GTX470))
        assert 100e6 < rate < 500e6

    def test_pascal_far_faster_than_fermi(self, cuckoo_report):
        """The generational gap the intro banks on: HBM2 vs GDDR5."""
        rep, n = cuckoo_report
        fermi = throughput(n, kernel_seconds(rep, GTX470))
        pascal = throughput(n, kernel_seconds(rep, P100))
        assert pascal > 2.5 * fermi

    def test_spec_sanity(self):
        assert GTX470.mem_bandwidth < P100.mem_bandwidth / 4
        assert GTX470.vram_bytes < P100.vram_bytes
