"""Tests for the counts→seconds kernel model."""

import numpy as np
import pytest

from repro.core.report import KernelReport
from repro.errors import ConfigurationError
from repro.perfmodel import calibration as cal
from repro.perfmodel.memmodel import (
    cas_degradation,
    divergence_adjusted_transactions,
    kernel_seconds,
    multisplit_seconds,
    projected_seconds,
    throughput,
)
from repro.perfmodel.specs import P100


def report(n=1000, windows=2.0, g=4, cas=1, host=0):
    return KernelReport(
        op="insert",
        num_ops=n,
        probe_windows=np.full(n, windows, dtype=np.int64),
        load_sectors=int(n * windows),
        store_sectors=n,
        cas_attempts=n * cas,
        cas_successes=n,
        group_size=g,
        host_load_sectors=host,
    )


class TestCasDegradation:
    def test_no_degradation_below_knee(self):
        assert cas_degradation(1 << 30) == 1.0
        assert cas_degradation(2 << 30) == 1.0
        assert cas_degradation(None) == 1.0

    def test_ramp_monotone(self):
        sizes = [2 << 30, 3 << 30, 4 << 30, 8 << 30, 16 << 30]
        factors = [cas_degradation(s) for s in sizes]
        assert factors == sorted(factors, reverse=True)

    def test_floor_respected(self):
        assert cas_degradation(1 << 40) == pytest.approx(cal.CAS_DEGRADE_FLOOR)

    def test_paper_observation(self):
        """§V-C: insertion drops for > 2 GB; retrieval (no CAS) does not."""
        assert cas_degradation(int(2.3 * (1 << 30))) < 1.0


class TestDivergence:
    def test_no_divergence_for_full_warp_group(self):
        probes = np.array([1, 5, 2, 7], dtype=np.int64)
        assert divergence_adjusted_transactions(probes, 32) == probes.sum()

    def test_warp_runs_at_its_slowest_group(self):
        # |g|=16 -> 2 groups per warp; warp of (1, 9) runs 9 iterations
        probes = np.array([1, 9], dtype=np.int64)
        assert divergence_adjusted_transactions(probes, 16) == 18

    def test_uniform_probes_have_no_penalty(self):
        probes = np.full(64, 3, dtype=np.int64)
        assert divergence_adjusted_transactions(probes, 1) == 64 * 3

    def test_skew_punished_more_for_smaller_groups(self):
        rng = np.random.default_rng(3)
        probes = rng.geometric(0.3, size=1 << 10).astype(np.int64)
        eff_g1 = divergence_adjusted_transactions(probes, 1)
        eff_g32 = divergence_adjusted_transactions(probes, 32)
        assert eff_g1 > eff_g32  # g=32 has one group per warp: no idle slots

    def test_empty(self):
        assert divergence_adjusted_transactions(np.empty(0), 4) == 0.0

    def test_partial_warp_padded(self):
        probes = np.array([5], dtype=np.int64)
        # one group in a warp of 8 groups: 8 slots for 5 iterations
        assert divergence_adjusted_transactions(probes, 4) == 40

    def test_invalid_group(self):
        with pytest.raises(ConfigurationError):
            divergence_adjusted_transactions(np.array([1]), 3)


class TestKernelSeconds:
    def test_zero_ops_is_free(self):
        assert kernel_seconds(KernelReport(op="insert"), P100) == 0.0

    def test_monotone_in_sectors(self):
        fast = kernel_seconds(report(windows=1.5), P100)
        slow = kernel_seconds(report(windows=8.0), P100)
        assert slow > fast

    def test_cas_degradation_slows_inserts(self):
        small = kernel_seconds(report(), P100, table_bytes=1 << 30)
        large = kernel_seconds(report(), P100, table_bytes=10 << 30)
        assert large > small

    def test_out_of_core_dominates(self):
        """Stadium's host-resident table: PCIe sectors swamp VRAM work
        (§III: 'the performance drops to around 100 million inserts').
        One PCIe sector (~3.2 ns) costs several times a VRAM-resident
        insert (~0.7 ns)."""
        n = 100_000
        in_core = kernel_seconds(report(n=n, host=0), P100)
        out_core = kernel_seconds(report(n=n, host=n), P100)
        assert out_core > 3 * in_core

    def test_throughput_helper(self):
        assert throughput(100, 2.0) == 50.0
        assert throughput(100, 0.0) == 0.0


class TestProjection:
    def test_scale_one_is_identity(self):
        rep = report()
        assert projected_seconds(rep, P100, scale=1.0) == pytest.approx(
            kernel_seconds(rep, P100)
        )

    def test_linear_terms_scale(self):
        rep = report()
        base = kernel_seconds(rep, P100) - cal.KERNEL_LAUNCH_SECONDS
        proj = projected_seconds(rep, P100, scale=100.0)
        assert proj == pytest.approx(base * 100 + cal.KERNEL_LAUNCH_SECONDS)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            projected_seconds(report(), P100, scale=0.0)


class TestMultisplitSeconds:
    def test_rate_anchor(self):
        """The calibrated per-GPU pair-processing rate (≈ 52.5 GB/s of
        in+out traffic) reproduces the paper's 210 GB/s accumulated over
        four GPUs."""
        rep = KernelReport(op="multisplit", num_ops=1 << 20)
        secs = multisplit_seconds(rep, P100) - cal.KERNEL_LAUNCH_SECONDS
        rate = (1 << 20) * 16 / secs
        assert rate == pytest.approx(cal.MULTISPLIT_PAIR_BYTES_PER_SECOND, rel=0.01)
        assert 4 * rate == pytest.approx(210e9, rel=0.01)

    def test_empty_is_free(self):
        assert multisplit_seconds(KernelReport(op="multisplit"), P100) == 0.0
