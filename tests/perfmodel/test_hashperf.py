"""Tests for the analytic throughput model and §VI heuristic."""

import pytest

from repro.constants import VALID_GROUP_SIZES
from repro.errors import ConfigurationError
from repro.perfmodel.hashperf import best_group_size, predicted_op_seconds, predicted_rate
from repro.perfmodel.specs import P100


class TestPredictedRate:
    def test_rates_positive_everywhere(self):
        for load in (0.1, 0.5, 0.9, 0.99):
            for g in VALID_GROUP_SIZES:
                assert predicted_rate(load, g, P100, op="insert") > 0
                assert predicted_rate(load, g, P100, op="query") > 0

    def test_rate_decreases_with_load(self):
        for g in (1, 4, 32):
            r_low = predicted_rate(0.4, g, P100)
            r_high = predicted_rate(0.97, g, P100)
            assert r_high < r_low

    def test_query_faster_than_insert(self):
        """No CAS on retrieval."""
        for g in (2, 4, 8):
            assert predicted_rate(0.9, g, P100, op="query") > predicted_rate(
                0.9, g, P100, op="insert"
            )

    def test_headline_anchor(self):
        """~1.4 G inserts/s at α = 0.95 with a mid-size group."""
        best = max(predicted_rate(0.95, g, P100) for g in VALID_GROUP_SIZES)
        assert 1.0e9 < best < 2.2e9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            predicted_rate(0.9, 3, P100)
        with pytest.raises(ConfigurationError):
            predicted_op_seconds(0.9, 4, P100, op="erase")


class TestHeuristic:
    def test_optimum_in_paper_range(self):
        """Fig. 7: 'optimal performance is achieved with |g| ∈ {2,4,8}'."""
        for load in (0.5, 0.8, 0.95):
            for op in ("insert", "query"):
                assert best_group_size(load, P100, op=op) in (2, 4, 8)

    def test_larger_groups_favored_as_load_rises(self):
        """'With increasing load larger group sizes get more favorable'."""
        low = best_group_size(0.3, P100, op="query")
        high = best_group_size(0.99, P100, op="query")
        assert high >= low

    def test_g1_never_optimal_at_high_load(self):
        assert best_group_size(0.95, P100) != 1

    def test_g32_never_optimal(self):
        for load in (0.3, 0.6, 0.9, 0.99):
            assert best_group_size(load, P100) != 32

    def test_degradation_threading(self):
        r_small = predicted_rate(0.9, 4, P100, table_bytes=1 << 30)
        r_large = predicted_rate(0.9, 4, P100, table_bytes=12 << 30)
        assert r_large < r_small
