"""Tests for distributed cascade timing."""

import numpy as np
import pytest

from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.perfmodel import calibration as cal
from repro.perfmodel.cascade import time_cascade
from repro.workloads.distributions import random_values, unique_keys


@pytest.fixture(scope="module")
def cascade():
    node = p100_nvlink_node(4)
    n = 1 << 13
    table = DistributedHashTable.for_load_factor(node, n, 0.9, group_size=4)
    keys = unique_keys(n, seed=1)
    ins = table.insert(keys, random_values(n, seed=2), source="host")
    _, _, qry = table.query(keys, source="host")
    return node, table, ins, qry


class TestPhases:
    def test_all_phases_positive_for_host_insert(self, cascade):
        node, table, ins, _ = cascade
        t = time_cascade(ins, table, node)
        assert t.h2d > 0 and t.multisplit > 0 and t.alltoall > 0 and t.kernel > 0
        assert t.reverse == 0 and t.d2h == 0  # inserts have no return leg

    def test_query_has_reverse_and_d2h(self, cascade):
        node, table, _, qry = cascade
        t = time_cascade(qry, table, node)
        assert t.reverse > 0 and t.d2h > 0

    def test_total_is_phase_sum(self, cascade):
        node, table, ins, _ = cascade
        t = time_cascade(ins, table, node)
        assert t.total == pytest.approx(
            t.h2d + t.multisplit + t.alltoall + t.kernel + t.reverse + t.d2h
        )
        assert t.device_only == pytest.approx(
            t.multisplit + t.alltoall + t.kernel + t.reverse
        )

    def test_host_retrieve_slower_than_insert(self, cascade):
        """§V-C: 'Host-sided insertions are faster than queries since the
        retrieval cascade involves an additional PCIe transfer.'"""
        node, table, ins, qry = cascade
        assert time_cascade(qry, table, node).total > time_cascade(
            ins, table, node
        ).total


class TestScaleProjection:
    def test_scale_multiplies_linear_phases(self, cascade):
        node, table, ins, _ = cascade
        t1 = time_cascade(ins, table, node)
        t2 = time_cascade(ins, table, node, scale=10.0)
        assert t2.h2d == pytest.approx(10 * t1.h2d)
        assert t2.alltoall == pytest.approx(10 * t1.alltoall)
        # kernel keeps its launch constant: slightly less than 10x
        assert t2.kernel < 10 * t1.kernel
        assert t2.kernel > 9 * (t1.kernel - cal.KERNEL_LAUNCH_SECONDS)

    def test_shard_bytes_override_degrades_insert(self, cascade):
        node, table, ins, _ = cascade
        base = time_cascade(ins, table, node).kernel
        degraded = time_cascade(
            ins, table, node, shard_table_bytes=10 << 30
        ).kernel
        assert degraded > base

    def test_invalid_scale(self, cascade):
        node, table, ins, _ = cascade
        with pytest.raises(ValueError):
            time_cascade(ins, table, node, scale=-1.0)
