"""Tests for scaling-efficiency metrics (Eq. 4)."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.scaling import (
    ScalingPoint,
    scaling_series,
    speedup,
    strong_efficiency,
    weak_efficiency,
)


class TestFormulas:
    def test_perfect_strong_scaling(self):
        assert strong_efficiency(4.0, 1.0, 4) == pytest.approx(1.0)

    def test_half_efficiency(self):
        assert strong_efficiency(4.0, 2.0, 4) == pytest.approx(0.5)

    def test_superlinear_exceeds_one(self):
        """The Fig. 9 'Insert 2^29' phenomenon: τ(n,m) < τ(n,1)/m."""
        assert strong_efficiency(10.0, 2.0, 4) > 1.0

    def test_weak_efficiency(self):
        assert weak_efficiency(2.0, 2.0) == pytest.approx(1.0)
        assert weak_efficiency(2.0, 4.0) == pytest.approx(0.5)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_invalid_times(self):
        with pytest.raises(ConfigurationError):
            strong_efficiency(0.0, 1.0, 2)
        with pytest.raises(ConfigurationError):
            weak_efficiency(1.0, 0.0)


class TestSeries:
    def test_strong_series(self):
        # a run with perfect scaling: time = n / m
        points, effs = scaling_series(
            lambda n, m: n / m / 1000, 1000, (1, 2, 4), mode="strong"
        )
        assert effs == pytest.approx([1.0, 1.0, 1.0])
        assert points[2].num_ops == 1000

    def test_weak_series(self):
        points, effs = scaling_series(
            lambda n, m: n / m / 1000, 1000, (1, 2, 4), mode="weak"
        )
        assert effs == pytest.approx([1.0, 1.0, 1.0])
        assert points[2].num_ops == 4000

    def test_must_start_at_one(self):
        with pytest.raises(ConfigurationError):
            scaling_series(lambda n, m: 1.0, 10, (2, 4))

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            scaling_series(lambda n, m: 1.0, 10, (1, 2), mode="diagonal")

    def test_ops_per_second(self):
        p = ScalingPoint(num_gpus=2, seconds=2.0, num_ops=100)
        assert p.ops_per_second == 50.0
