"""Calibration-sensitivity tests: the shapes must not be a lucky fit.

The reproduction's claims are qualitative orderings (optimal |g| band,
WarpDrive beating CUDPP, the degradation knee).  These tests perturb
each calibration constant by ±30% and assert the orderings survive —
i.e. the shapes derive from measured algorithmic work, not from the
specific constants.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines.cudpp_cuckoo import CudppCuckooTable
from repro.constants import VALID_GROUP_SIZES
from repro.core.table import WarpDriveHashTable
from repro.perfmodel import calibration as cal
from repro.perfmodel.memmodel import kernel_seconds, throughput
from repro.perfmodel.specs import P100
from repro.workloads.distributions import random_values, unique_keys

N = 1 << 14
LOAD = 0.95


@pytest.fixture(scope="module")
def reports():
    """Measured insert reports at α = 0.95: one per |g|, plus CUDPP."""
    keys = unique_keys(N, seed=1)
    values = random_values(N, seed=2)
    wd = {}
    for g in VALID_GROUP_SIZES:
        t = WarpDriveHashTable.for_load_factor(N, LOAD, group_size=g)
        wd[g] = t.insert(keys, values)
    ck = CudppCuckooTable.for_load_factor(N, LOAD, seed=3)
    cuckoo = ck.insert(keys, values)
    return wd, cuckoo


def perturbed_spec(*, bw_factor=1.0, cas_factor=1.0):
    return dataclasses.replace(
        P100,
        random_access_efficiency=min(
            P100.random_access_efficiency * bw_factor, 1.0
        ),
        atomic_cas_rate=P100.atomic_cas_rate * cas_factor,
    )


FACTORS = (0.7, 1.0, 1.3)


class TestOrderingRobustness:
    @pytest.mark.parametrize("bw", FACTORS)
    @pytest.mark.parametrize("cas", FACTORS)
    def test_wd_beats_cuckoo_under_any_perturbation(self, reports, bw, cas):
        wd, cuckoo = reports
        spec = perturbed_spec(bw_factor=bw, cas_factor=cas)
        best_wd = min(kernel_seconds(r, spec) for r in wd.values())
        cuckoo_t = kernel_seconds(cuckoo, spec)
        assert cuckoo_t > 1.5 * best_wd  # the headline ordering holds

    @pytest.mark.parametrize("bw", FACTORS)
    @pytest.mark.parametrize("cas", FACTORS)
    def test_optimal_group_band_stable(self, reports, bw, cas):
        """Whatever the constants, |g| ∈ {2, 4, 8} stays optimal and the
        extremes stay dominated at high load."""
        wd, _ = reports
        spec = perturbed_spec(bw_factor=bw, cas_factor=cas)
        times = {g: kernel_seconds(r, spec) for g, r in wd.items()}
        best = min(times, key=times.get)
        assert best in (2, 4, 8)
        assert times[1] > times[best]
        assert times[32] > times[best]

    @pytest.mark.parametrize("issue_factor", FACTORS)
    def test_issue_rate_perturbation(self, reports, issue_factor, monkeypatch):
        wd, cuckoo = reports
        monkeypatch.setattr(
            cal, "TRANSACTION_ISSUE_RATE", cal.TRANSACTION_ISSUE_RATE * issue_factor
        )
        times = {g: kernel_seconds(r, P100) for g, r in wd.items()}
        best = min(times, key=times.get)
        assert best in (2, 4, 8)
        assert kernel_seconds(cuckoo, P100) > 1.5 * times[best]

    def test_degradation_knee_ordering_robust(self, reports):
        """Past-knee tables insert slower than sub-knee ones regardless
        of the ramp details."""
        wd, _ = reports
        rep = wd[4]
        for floor in (0.2, 0.3, 0.5):
            small = kernel_seconds(rep, P100, table_bytes=1 << 30)
            big = kernel_seconds(rep, P100, table_bytes=12 << 30)
            assert big > small


class TestAbsoluteSensitivity:
    def test_headline_rate_scales_smoothly(self, reports):
        """±30% on the CAS rate moves the headline rate by well under
        ±30% (it is one of three terms) — no cliff effects."""
        wd, _ = reports
        rep = wd[4]
        base = throughput(N, kernel_seconds(rep, P100))
        lo = throughput(N, kernel_seconds(rep, perturbed_spec(cas_factor=0.7)))
        hi = throughput(N, kernel_seconds(rep, perturbed_spec(cas_factor=1.3)))
        assert 0.75 * base < lo < base
        assert base < hi < 1.25 * base
