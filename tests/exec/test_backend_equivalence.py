"""Backend determinism: serial ≡ thread ≡ process, bit for bit.

The engine's contract (ISSUE: shards are disjoint, kernels are pure,
counters are charged parent-side in shard order) means every backend
must produce identical final slot arrays, statuses/outputs, and merged
counter totals.  These tests enforce that for insert/query/erase over
|g| ∈ {1, 4, 32}, including a tombstone-heavy erase-then-reinsert pass.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.partitioned import PartitionedWarpDriveTable
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node
from repro.workloads import random_values, unique_keys

COUNTER_FIELDS = (
    "load_sectors",
    "store_sectors",
    "cas_attempts",
    "cas_successes",
    "warp_collectives",
    "window_probes",
    "kernel_launches",
)


def _counter_totals(devices) -> tuple:
    return tuple(
        tuple(getattr(d.counter, f) for f in COUNTER_FIELDS) for d in devices
    )


def _run_cascades(executor: str, group_size: int, n: int = 6000) -> dict:
    """One full insert → query → erase → reinsert run; returns a snapshot."""
    keys = unique_keys(n, seed=21)
    values = random_values(n, seed=22)
    topology = p100_nvlink_node(4)
    table = DistributedHashTable.for_workload(
        topology, keys, 0.85, group_size=group_size,
        executor=executor, workers=2,
    )
    try:
        irep = table.insert(keys, values, source="device")
        qvals, qfound, _ = table.query(keys, source="device")
        erased, _ = table.erase(keys[: n // 2])
        # tombstone-heavy reinsert: half the table is tombstones now
        table.insert(keys[: n // 2], values[: n // 2] + 1, source="device")
        return {
            "slots": tuple(s.slots.tobytes() for s in table.shards),
            "statuses": tuple(
                r.probe_windows.tobytes() for r in irep.kernel_reports
            ),
            "query": (qvals.tobytes(), qfound.tobytes()),
            "erased": erased.tobytes(),
            "counters": _counter_totals(topology.devices),
            "size": len(table),
            "merged": tuple(
                getattr(irep.merged_kernel_report(), f)
                for f in ("num_ops", "load_sectors", "cas_attempts", "failed")
            ),
        }
    finally:
        table.free()


class TestDistributedEquivalence:
    @pytest.mark.parametrize("group_size", [1, 4, 32])
    def test_serial_vs_thread(self, group_size):
        assert _run_cascades("serial", group_size) == _run_cascades(
            "thread", group_size
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("group_size", [1, 4, 32])
    def test_serial_vs_process(self, group_size):
        assert _run_cascades("serial", group_size) == _run_cascades(
            "process", group_size
        )


def _run_partitioned(executor: str, keys, values) -> dict:
    table = PartitionedWarpDriveTable(
        max(2 * keys.size, 64),
        max_partition_bytes=max(keys.size, 16) * 8 // 2,
        executor=executor,
        workers=2,
    )
    try:
        table.insert(keys, values)
        qvals, qfound = table.query(keys)
        erased = table.erase(keys[::2])
        table.insert(keys[::2], values[::2])
        return {
            "slots": tuple(s.slots.tobytes() for s in table.subtables),
            "query": (qvals.tobytes(), qfound.tobytes()),
            "erased": erased.tobytes(),
            "counters": tuple(
                tuple(getattr(s.counter, f) for f in COUNTER_FIELDS)
                for s in table.subtables
            ),
            "size": len(table),
        }
    finally:
        table.free()


class TestPartitionedEquivalence:
    def test_serial_vs_thread(self):
        keys = unique_keys(4000, seed=31)
        values = random_values(4000, seed=32)
        assert _run_partitioned("serial", keys, values) == _run_partitioned(
            "thread", keys, values
        )

    @pytest.mark.slow
    def test_serial_vs_process(self):
        keys = unique_keys(4000, seed=31)
        values = random_values(4000, seed=32)
        assert _run_partitioned("serial", keys, values) == _run_partitioned(
            "process", keys, values
        )


class TestPropertyEquivalence:
    @examples(15)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=800),
        group_size=st.sampled_from([1, 4, 32]),
    )
    def test_random_workloads_serial_vs_thread(self, seed, n, group_size):
        keys = unique_keys(n, seed=seed)
        values = random_values(n, seed=seed + 1)
        topology_a, topology_b = p100_nvlink_node(4), p100_nvlink_node(4)
        a = DistributedHashTable.for_workload(
            topology_a, keys, 0.8, group_size=group_size, executor="serial"
        )
        b = DistributedHashTable.for_workload(
            topology_b, keys, 0.8, group_size=group_size,
            executor="thread", workers=2,
        )
        try:
            a.insert(keys, values, source="device")
            b.insert(keys, values, source="device")
            av, af, _ = a.query(keys, source="device")
            bv, bf, _ = b.query(keys, source="device")
            ae, _ = a.erase(keys[: n // 2])
            be, _ = b.erase(keys[: n // 2])
            for sa, sb in zip(a.shards, b.shards):
                assert np.array_equal(sa.slots, sb.slots)
            assert np.array_equal(av, bv)
            assert np.array_equal(af, bf)
            assert np.array_equal(ae, be)
            assert _counter_totals(topology_a.devices) == _counter_totals(
                topology_b.devices
            )
        finally:
            a.free()
            b.free()
