"""Three-way backend equivalence: ``fast`` ≡ ``ref`` ≡ ``compiled``.

The two-way checks live next door (``test_backend_equivalence.py`` for
engines, ``tests/core/test_equivalence.py`` for fast-vs-ref contents,
``tests/core/test_compiled_kernels.py`` for fast-vs-compiled bits).
This module closes the triangle: all three kernel backends must agree
on table contents and query/erase results, across group sizes, both
layouts, and tombstone-heavy churn — and the engines must report the
compiled backend they actually ran.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from profiles import examples

from repro.core.kernels_jit import compiled_available
from repro.core.table import WarpDriveHashTable
from repro.exec.engine import ShardKernelTask, create_engine
from repro.workloads import random_values, unique_keys

needs_provider = pytest.mark.skipif(
    not compiled_available(), reason="no JIT provider on this host"
)

BACKENDS = ("fast", "ref", "compiled")


def sorted_pairs(table):
    k, v = table.export()
    order = np.argsort(k)
    return k[order].tobytes(), v[order].tobytes()


def churn(kernels: str, *, n=180, group_size=4, layout="aos", seed=51):
    """insert → query(hit+miss) → erase → reinsert, contents snapshot.

    The ref kernels replay every operation through the SIMT scheduler, so
    the workload stays small; contents (not probe traffic) are the
    three-way invariant — ref charges faithful per-step traffic that the
    bulk backends batch differently.
    """
    keys = unique_keys(n, seed=seed)
    values = random_values(n, seed=seed + 1)
    probe = np.concatenate([keys, unique_keys(n // 2 or 1, seed=seed + 2)])
    table = WarpDriveHashTable(
        max(32, int(n / 0.7)), group_size=group_size, layout=layout
    )
    try:
        table.insert(keys, values, kernels=kernels)
        qvals, qfound = table.query(probe, kernels=kernels)
        erased = table.erase(keys[: n // 2], kernels=kernels)
        table.insert(keys[: n // 2], values[: n // 2] + 1, kernels=kernels)
        return {
            "pairs": sorted_pairs(table),
            "query": (qvals.tobytes(), qfound.tobytes()),
            "erased": erased.tobytes(),
            "size": len(table),
        }
    finally:
        table.free()


@needs_provider
class TestThreeWay:
    @pytest.mark.parametrize("group_size", [1, 4, 32])
    def test_group_sizes(self, group_size):
        snaps = [churn(k, group_size=group_size) for k in BACKENDS]
        assert snaps[0] == snaps[1] == snaps[2]

    @pytest.mark.parametrize("layout", ["aos", "soa", "compact"])
    def test_layouts(self, layout):
        snaps = [churn(k, layout=layout) for k in BACKENDS]
        assert snaps[0] == snaps[1] == snaps[2]

    @examples(10)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=1, max_value=150),
        group_size=st.sampled_from([1, 4, 32]),
    )
    def test_random_workloads(self, seed, n, group_size):
        snaps = [
            churn(k, n=n, group_size=group_size, seed=seed) for k in BACKENDS
        ]
        assert snaps[0] == snaps[1] == snaps[2]


@needs_provider
class TestEngineDispatch:
    """The engines run the compiled kernels and say so in the result."""

    def _run(self, engine: str, kernels: str):
        keys = unique_keys(3000, seed=61)
        values = random_values(3000, seed=62)
        with create_engine(engine, workers=2) as eng:
            table = WarpDriveHashTable(
                4096, group_size=4, shared=eng.requires_shared_slots
            )
            try:
                res = eng.run(
                    [
                        ShardKernelTask(
                            shard=0,
                            op="insert",
                            slots=table.slots,
                            seq=table.seq,
                            keys=keys,
                            values=values,
                            shm=table.shm_descriptor(),
                            kernels=kernels,
                        )
                    ]
                )[0]
                return {
                    "slots": np.asarray(table.slots).tobytes(),
                    "status": res.status.tobytes(),
                    "report": (
                        res.report.num_ops,
                        res.report.load_sectors,
                        res.report.store_sectors,
                        res.report.cas_attempts,
                        res.report.failed,
                        res.report.probe_windows.tobytes(),
                    ),
                    "kernels": res.kernels,
                }
            finally:
                table.free()

    @pytest.mark.parametrize("engine", ["serial", "thread"])
    def test_compiled_matches_fast_and_is_recorded(self, engine):
        fast = self._run(engine, "fast")
        compiled = self._run(engine, "compiled")
        assert compiled.pop("kernels") == "compiled"
        assert fast.pop("kernels") == "fast"
        assert fast == compiled

    @pytest.mark.slow
    def test_process_workers_resolve_and_match(self):
        fast = self._run("process", "fast")
        compiled = self._run("process", "compiled")
        assert compiled.pop("kernels") == "compiled"
        assert fast.pop("kernels") == "fast"
        assert fast == compiled


class TestNumbaProvider:
    """The optional-dependency provider (``pip install repro[compiled]``).

    Skips wherever numba is absent — the cc/interp providers cover the
    algorithm there; this leg pins the njit-compiled loops specifically.
    """

    @pytest.mark.parametrize("group_size", [1, 4, 32])
    def test_numba_three_way(self, group_size, monkeypatch):
        pytest.importorskip("numba")
        monkeypatch.setenv("REPRO_JIT_PROVIDER", "numba")
        snaps = [churn(k, group_size=group_size) for k in BACKENDS]
        assert snaps[0] == snaps[1] == snaps[2]

    def test_numba_layouts(self, monkeypatch):
        pytest.importorskip("numba")
        monkeypatch.setenv("REPRO_JIT_PROVIDER", "numba")
        for layout in ("aos", "soa", "compact"):
            assert churn("compiled", layout=layout) == churn(
                "fast", layout=layout
            )
