"""Unit tests for the shard-execution engine building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HashTableConfig
from repro.core.report import KernelReport
from repro.core.table import WarpDriveHashTable
from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    MeasuredTimeline,
    ProcessEngine,
    SerialEngine,
    ShardKernelTask,
    ShardSpan,
    SharedSlots,
    ThreadEngine,
    WorkerError,
    WorkerPool,
    attach_slots,
    available_backends,
    create_engine,
)
from repro.workloads import random_values, unique_keys


def _table(n: int, *, shared: bool = False) -> WarpDriveHashTable:
    config = HashTableConfig.for_load_factor(n, 0.9, group_size=4)
    return WarpDriveHashTable(config=config, shared=shared)


def _tasks(tables, keys, values) -> list[ShardKernelTask]:
    return [
        ShardKernelTask(
            shard=i,
            op="insert",
            slots=t.slots,
            seq=t.seq,
            keys=keys[i],
            values=values[i],
            shm=t.shm_descriptor(),
        )
        for i, t in enumerate(tables)
    ]


class TestRegistry:
    def test_backends_listed(self):
        assert available_backends() == ("serial", "thread", "process")

    def test_create_by_name(self):
        with create_engine("serial") as eng:
            assert isinstance(eng, SerialEngine)
        with create_engine("thread", workers=2) as eng:
            assert isinstance(eng, ThreadEngine)
            assert eng.workers == 2

    def test_create_passthrough(self):
        eng = SerialEngine()
        assert create_engine(eng) is eng

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            create_engine("cuda")

    def test_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            ThreadEngine(workers=-3)


class TestSerialThread:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_runs_all_ops(self, executor):
        n = 2000
        keys = unique_keys(n, seed=3)
        values = random_values(n, seed=4)
        table = _table(n)
        with create_engine(executor, workers=2) as eng:
            res = eng.run(_tasks([table], [keys], [values]))[0]
            table.absorb_insert(keys, values, res.report, res.status)
            assert len(table) == n

            qres = eng.run(
                [
                    ShardKernelTask(
                        shard=0, op="query", slots=table.slots,
                        seq=table.seq, keys=keys,
                    )
                ]
            )[0]
            assert qres.found.all()
            assert (qres.values == values).all()

            eres = eng.run(
                [
                    ShardKernelTask(
                        shard=0, op="erase", slots=table.slots,
                        seq=table.seq, keys=keys[: n // 2],
                    )
                ]
            )[0]
            table.absorb_erase(eres.report)
            assert eres.erased.all()
            assert len(table) == n - n // 2

    def test_results_in_task_order_with_spans(self):
        n = 500
        tables = [_table(n) for _ in range(3)]
        keys = [unique_keys(n, seed=s) for s in (1, 2, 3)]
        values = [random_values(n, seed=s) for s in (4, 5, 6)]
        with create_engine("thread", workers=3) as eng:
            results = eng.run(_tasks(tables, keys, values))
        assert [r.shard for r in results] == [0, 1, 2]
        # spans rebased: earliest start is exactly 0, all durations > 0
        starts = [r.span.start for r in results]
        assert min(starts) == 0.0
        assert all(r.span.duration > 0 for r in results)

    def test_unknown_op_rejected(self):
        table = _table(64)
        task = ShardKernelTask(
            shard=0, op="upsert", slots=table.slots, seq=table.seq,
            keys=unique_keys(8, seed=1),
        )
        with pytest.raises(ConfigurationError, match="unknown kernel op"):
            SerialEngine().run([task])


class TestMetrics:
    def test_timeline_aggregates(self):
        tl = MeasuredTimeline()
        tl.add(ShardSpan(0, "insert", 0.0, 1.0))
        tl.add(ShardSpan(1, "insert", 0.5, 2.0))
        assert tl.makespan == 2.0
        assert tl.busy_seconds == pytest.approx(2.5)
        assert tl.overlap_speedup == pytest.approx(1.25)
        assert len(tl.shard_spans(1)) == 1

    def test_extend_with_offset(self):
        tl = MeasuredTimeline()
        tl.extend([ShardSpan(0, "query", 0.0, 1.0)], offset=3.0)
        assert tl.spans[0].start == 3.0
        assert tl.makespan == 4.0

    def test_render_rows(self):
        tl = MeasuredTimeline()
        tl.add(ShardSpan(-1, "insert batch", 0.0, 2.0))
        tl.add(ShardSpan(0, "insert", 0.0, 1.0))
        art = tl.render(width=40)
        assert "node" in art and "gpu0" in art

    def test_empty_timeline(self):
        tl = MeasuredTimeline()
        assert tl.makespan == 0.0
        assert tl.overlap_speedup == 0.0
        assert tl.render() == "(empty measured timeline)"


class TestSharedSlots:
    def test_roundtrip(self):
        owner = SharedSlots(128)
        try:
            owner.array[:4] = [1, 2, 3, 4]
            view, handle = attach_slots(owner.descriptor())
            assert (view[:4] == [1, 2, 3, 4]).all()
            view[0] = 99
            assert owner.array[0] == 99
            del view
            handle.close()
        finally:
            owner.close()

    def test_close_idempotent(self):
        owner = SharedSlots(16)
        owner.close()
        owner.close()
        assert owner.closed

    def test_bad_dtype_rejected(self):
        owner = SharedSlots(16)
        try:
            desc = owner.descriptor()
            with pytest.raises(ConfigurationError):
                attach_slots(type(desc)(desc.name, desc.capacity, dtype="int8"))
        finally:
            owner.close()


def _boom(x):
    raise ValueError(f"bad task {x}")


def _double(x):
    return 2 * x


@pytest.mark.slow
class TestWorkerPool:
    def test_map_in_order(self):
        with WorkerPool(workers=2) as pool:
            assert pool.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]

    def test_exception_propagates_with_traceback(self):
        with WorkerPool(workers=1) as pool:
            with pytest.raises(WorkerError, match="bad task 7") as exc_info:
                pool.map(_boom, [7])
            assert "ValueError" in exc_info.value.remote_traceback


@pytest.mark.slow
class TestProcessEngine:
    def test_requires_shared_slots(self):
        table = _table(64, shared=False)
        task = ShardKernelTask(
            shard=0, op="insert", slots=table.slots, seq=table.seq,
            keys=unique_keys(8, seed=1), values=random_values(8, seed=2),
        )
        with ProcessEngine(workers=1) as eng:
            with pytest.raises(ExecutionError, match="shared-memory"):
                eng.run([task])

    def test_mutates_shared_table(self):
        n = 1000
        keys = unique_keys(n, seed=5)
        values = random_values(n, seed=6)
        table = _table(n, shared=True)
        try:
            with ProcessEngine(workers=1) as eng:
                res = eng.run(_tasks([table], [keys], [values]))[0]
                table.absorb_insert(keys, values, res.report, res.status)
                got, found = table.query(keys)
                assert found.all()
                assert (got == values).all()
        finally:
            table.free()


class TestReportHelpers:
    def test_empty_classmethod(self):
        rep = KernelReport.empty("query", 8)
        assert rep.op == "query"
        assert rep.num_ops == 0
        assert rep.group_size == 8
        assert rep.total_windows == 0

    def test_charge_to_matches_inline_counting(self):
        """Counter-less kernel + charge_to == counter-threaded kernel."""
        from repro.core.bulk import bulk_insert
        from repro.simt.counters import TransactionCounter

        n = 1500
        keys = unique_keys(n, seed=11)
        values = random_values(n, seed=12)
        t_inline, t_charged = _table(n), _table(n)

        inline = TransactionCounter()
        bulk_insert(t_inline.slots, t_inline.seq, keys, values, inline)

        charged = TransactionCounter()
        report, _ = bulk_insert(t_charged.slots, t_charged.seq, keys, values, None)
        report.charge_to(charged)

        assert np.array_equal(t_inline.slots, t_charged.slots)
        for attr in (
            "load_sectors", "store_sectors", "cas_attempts", "cas_successes",
            "warp_collectives", "window_probes", "kernel_launches",
        ):
            assert getattr(inline, attr) == getattr(charged, attr), attr


class TestSubmitPoll:
    """The non-blocking submit/poll path behind the pipeline committer."""

    def test_pending_wave_needs_results_or_collect(self):
        from repro.exec import PendingWave

        with pytest.raises(ConfigurationError):
            PendingWave()

    def test_completed_wave_is_done_and_idempotent(self):
        from repro.exec import PendingWave

        wave = PendingWave([1, 2, 3])
        assert wave.done()
        assert wave.result() == [1, 2, 3]
        assert wave.result() == [1, 2, 3]

    def test_deferred_wave_collects_once(self):
        from repro.exec import PendingWave

        calls = []

        def collect():
            calls.append(1)
            return ["r"]

        wave = PendingWave(poll=lambda: False, collect=collect)
        assert not wave.done()
        assert wave.result() == ["r"]
        assert wave.result() == ["r"]
        assert calls == [1]
        assert wave.done()

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_submit_matches_run(self, executor):
        """submit().result() == run(): same results, same table effects."""
        n = 800
        keys = [unique_keys(n, seed=s) for s in (7, 8)]
        values = [random_values(n, seed=s) for s in (9, 10)]
        run_tables = [_table(n) for _ in range(2)]
        sub_tables = [_table(n) for _ in range(2)]
        with create_engine(executor, workers=2) as eng:
            ran = eng.run(_tasks(run_tables, keys, values))
            wave = eng.submit(_tasks(sub_tables, keys, values))
            submitted = wave.result()
        assert wave.done()
        assert [r.shard for r in submitted] == [r.shard for r in ran]
        for rt, st in zip(run_tables, sub_tables):
            assert np.array_equal(rt.slots, st.slots)
        for r, s in zip(ran, submitted):
            assert r.report.num_ops == s.report.num_ops
            assert r.status is None or (r.status == s.status).all()

    def test_thread_submit_overlaps_host_work(self):
        """The thread wave really is in flight: submit returns before
        the kernels complete and result() joins them."""
        n = 4000
        tables = [_table(n) for _ in range(2)]
        keys = [unique_keys(n, seed=s) for s in (21, 22)]
        values = [random_values(n, seed=s) for s in (23, 24)]
        with create_engine("thread", workers=2) as eng:
            wave = eng.submit(_tasks(tables, keys, values))
            results = wave.result()
        assert len(results) == 2
        assert all(r.report.num_ops == n for r in results)

    def test_empty_submit(self):
        with create_engine("thread", workers=1) as eng:
            wave = eng.submit([])
        assert wave.done()
        assert wave.result() == []

    def test_submit_span_tree_matches_run(self):
        """Traced dispatch spans are backend-identical for run vs
        submit — collection happens at result() under the same parent."""
        from repro.obs import runtime as obs

        n = 600
        keys = [unique_keys(n, seed=31)]
        values = [random_values(n, seed=32)]

        def trace(call):
            with obs.session() as (recorder, _):
                table = _table(n)
                with create_engine("thread", workers=1) as eng:
                    call(eng, _tasks([table], keys, values))
            return [
                (s.name, s.category) for s in recorder.spans
            ]

        ran = trace(lambda eng, tasks: eng.run(tasks))
        submitted = trace(lambda eng, tasks: eng.submit(tasks).result())
        assert ran == submitted
