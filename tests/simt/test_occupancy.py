"""Tests for the SM occupancy calculator."""

import pytest

from repro.errors import ConfigurationError
from repro.simt.occupancy import (
    PASCAL_SM,
    KernelResources,
    OccupancyResult,
    SMResources,
    occupancy,
)


class TestLimits:
    def test_thread_limited_kernel(self):
        """Light kernel: 2048 threads / 256 per block = 8 blocks."""
        res = occupancy(KernelResources(block_threads=256, registers_per_thread=24))
        assert res.blocks_per_sm == 8
        assert res.limiter == "threads"
        assert res.occupancy == pytest.approx(1.0)

    def test_register_limited_kernel(self):
        """Heavy register use caps residency below the thread limit."""
        res = occupancy(KernelResources(block_threads=256, registers_per_thread=128))
        assert res.limiter == "registers"
        assert res.blocks_per_sm == 65536 // (128 * 256)
        assert res.occupancy < 1.0

    def test_shared_memory_limited(self):
        res = occupancy(
            KernelResources(block_threads=128, shared_per_block=32 * 1024)
        )
        assert res.limiter == "shared_memory"
        assert res.blocks_per_sm == 2

    def test_block_slot_limited(self):
        """Tiny blocks hit the 32-block cap before the thread cap."""
        res = occupancy(KernelResources(block_threads=32, registers_per_thread=16))
        assert res.limiter == "blocks"
        assert res.blocks_per_sm == 32
        assert res.warps_per_sm == 32

    def test_warps_capped_at_max(self):
        res = occupancy(KernelResources(block_threads=1024, registers_per_thread=16))
        assert res.warps_per_sm <= PASCAL_SM.max_warps


class TestHashKernelRelevance:
    def test_warpdrive_kernel_occupancy_full(self):
        """The probing kernel is light (few registers, no shared memory):
        it runs at full occupancy — why small |g| enjoys 'a higher group
        occupancy rate' (§V-B)."""
        res = occupancy(KernelResources(block_threads=256, registers_per_thread=32))
        assert res.occupancy == pytest.approx(1.0)

    def test_resident_groups_scale_inversely_with_group_size(self):
        res = occupancy(KernelResources())
        assert res.resident_groups(1) == 32 * res.resident_groups(32)
        assert res.resident_groups(4) == 8 * res.resident_groups(32)

    def test_chip_level_concurrency_supports_calibration(self):
        """P100: 56 SMs x 64 warps x 32 lanes ~ 115k resident threads —
        the basis for the bulk executor's wave-size bound."""
        res = occupancy(KernelResources(block_threads=256, registers_per_thread=32))
        resident_threads = 56 * res.warps_per_sm * 32
        assert 100_000 < resident_threads < 130_000


class TestValidation:
    def test_bad_block_threads(self):
        with pytest.raises(ConfigurationError):
            KernelResources(block_threads=100)

    def test_bad_registers(self):
        with pytest.raises(ConfigurationError):
            KernelResources(registers_per_thread=0)

    def test_resident_groups_validation(self):
        res = occupancy(KernelResources())
        with pytest.raises(ConfigurationError):
            res.resident_groups(0)
