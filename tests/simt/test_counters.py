"""Tests for transaction accounting."""

import numpy as np
import pytest

from repro.constants import SECTOR_BYTES
from repro.simt.counters import TransactionCounter, sectors_for_access, sectors_for_lanes


class TestSectorsForAccess:
    def test_zero_bytes(self):
        assert sectors_for_access(0, 0) == 0

    def test_aligned_single_sector(self):
        assert sectors_for_access(0, 32) == 1
        assert sectors_for_access(32, 32) == 1

    def test_straddling_access(self):
        assert sectors_for_access(16, 32) == 2

    def test_window_sizes(self):
        """Coalesced |g|-slot windows: the cost ladder behind Fig. 7."""
        assert sectors_for_access(0, 1 * 8) == 1
        assert sectors_for_access(0, 4 * 8) == 1
        assert sectors_for_access(0, 8 * 8) == 2
        assert sectors_for_access(0, 32 * 8) == 8


class TestSectorsForLanes:
    def test_fully_coalesced_lanes(self):
        addrs = np.arange(4) * 8  # four consecutive 8-byte slots
        assert sectors_for_lanes(addrs, 8) == 1

    def test_scattered_lanes(self):
        addrs = np.array([0, 1000, 2000, 3000])
        assert sectors_for_lanes(addrs, 8) == 4

    def test_duplicate_lanes_share_sector(self):
        addrs = np.array([0, 0, 8, 16])
        assert sectors_for_lanes(addrs, 8) == 1

    def test_empty(self):
        assert sectors_for_lanes(np.array([]), 8) == 0

    def test_straddler_counts_both_sectors(self):
        assert sectors_for_lanes(np.array([28]), 8) == 2


class TestTransactionCounter:
    def test_bytes_derived_from_sectors(self):
        c = TransactionCounter()
        c.charge_load(3)
        c.charge_store(2)
        assert c.bytes_loaded == 3 * SECTOR_BYTES
        assert c.bytes_stored == 2 * SECTOR_BYTES
        assert c.total_sectors == 5

    def test_cas_accounting(self):
        c = TransactionCounter()
        c.charge_cas(attempts=3, successes=1)
        assert c.cas_attempts == 3 and c.cas_successes == 1

    def test_reset(self):
        c = TransactionCounter(load_sectors=5, cas_attempts=2)
        c.reset()
        assert c.snapshot() == TransactionCounter().snapshot()

    def test_snapshot_delta(self):
        c = TransactionCounter()
        before = c.snapshot()
        c.charge_load(7)
        delta = c.delta(before)
        assert delta["load_sectors"] == 7
        assert delta["store_sectors"] == 0

    def test_merge_and_add(self):
        a = TransactionCounter(load_sectors=1, cas_attempts=2)
        b = TransactionCounter(load_sectors=3, window_probes=4)
        total = a + b
        assert total.load_sectors == 4
        assert total.cas_attempts == 2
        assert total.window_probes == 4
        # operands untouched
        assert a.load_sectors == 1 and b.load_sectors == 3

    def test_charge_coalesced(self):
        c = TransactionCounter()
        c.charge_coalesced_load(np.arange(4) * 8, 8)
        c.charge_coalesced_store(np.array([0, 4096]), 8)
        assert c.load_sectors == 1
        assert c.store_sectors == 2
