"""Tests for coalesced-group collectives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simt.counters import TransactionCounter
from repro.simt.warp import CoalescedGroup


class TestConstruction:
    @pytest.mark.parametrize("g", [1, 2, 4, 8, 16, 32])
    def test_valid_sizes(self, g):
        cg = CoalescedGroup(g)
        assert cg.size == g
        assert cg.groups_per_warp == 32 // g

    @pytest.mark.parametrize("g", [0, 3, 33])
    def test_invalid_sizes(self, g):
        with pytest.raises(ConfigurationError):
            CoalescedGroup(g)

    def test_thread_rank(self):
        assert CoalescedGroup(8).thread_rank.tolist() == list(range(8))


class TestBallot:
    def test_ballot_packs_lanes(self):
        cg = CoalescedGroup(4)
        assert cg.ballot(np.array([True, False, True, False])) == 0b0101

    def test_ballot_empty_mask(self):
        cg = CoalescedGroup(8)
        assert cg.ballot(np.zeros(8, dtype=bool)) == 0

    def test_ballot_full_mask(self):
        cg = CoalescedGroup(32)
        assert cg.ballot(np.ones(32, dtype=bool)) == 0xFFFFFFFF

    def test_ballot_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            CoalescedGroup(4).ballot(np.ones(5, dtype=bool))

    @given(st.lists(st.booleans(), min_size=8, max_size=8))
    def test_ballot_ffs_leader_is_first_true(self, flags):
        cg = CoalescedGroup(8)
        mask = cg.ballot(np.array(flags))
        leader = cg.elect_leader(mask)
        if any(flags):
            assert leader == flags.index(True)
        else:
            assert leader == -1


class TestAnyAll:
    def test_any(self):
        cg = CoalescedGroup(4)
        assert cg.any(np.array([False, False, True, False]))
        assert not cg.any(np.zeros(4, dtype=bool))

    def test_all(self):
        cg = CoalescedGroup(2)
        assert cg.all(np.ones(2, dtype=bool))
        assert not cg.all(np.array([True, False]))

    def test_shape_checks(self):
        with pytest.raises(ConfigurationError):
            CoalescedGroup(4).any(np.ones(3, dtype=bool))
        with pytest.raises(ConfigurationError):
            CoalescedGroup(4).all(np.ones(3, dtype=bool))


class TestShfl:
    def test_broadcast(self):
        cg = CoalescedGroup(4)
        out = cg.shfl(np.array([10, 20, 30, 40]), 2)
        assert out.tolist() == [30, 30, 30, 30]

    def test_invalid_lane(self):
        with pytest.raises(ConfigurationError):
            CoalescedGroup(4).shfl(np.arange(4), 4)

    def test_returns_copy(self):
        cg = CoalescedGroup(2)
        vals = np.array([1, 2])
        out = cg.shfl(vals, 0)
        out[0] = 99
        assert vals[0] == 1


class TestAccounting:
    def test_collectives_charged(self):
        counter = TransactionCounter()
        cg = CoalescedGroup(4, counter)
        cg.ballot(np.ones(4, dtype=bool))
        cg.any(np.ones(4, dtype=bool))
        cg.shfl(np.arange(4), 0)
        assert counter.warp_collectives == 3

    def test_no_counter_is_fine(self):
        cg = CoalescedGroup(4)
        cg.ballot(np.ones(4, dtype=bool))  # must not raise
