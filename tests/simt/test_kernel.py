"""Tests for the kernel launch abstraction."""

import pytest

from repro.errors import ConfigurationError
from repro.simt.counters import TransactionCounter
from repro.simt.kernel import LaunchConfig, launch
from repro.simt.scheduler import RoundRobinScheduler


class TestLaunchConfig:
    def test_groups_per_block_and_warp(self):
        cfg = LaunchConfig(group_size=4, block_threads=256)
        assert cfg.groups_per_block == 64
        assert cfg.groups_per_warp == 8

    def test_blocks_for(self):
        cfg = LaunchConfig(group_size=8, block_threads=128)
        assert cfg.blocks_for(16) == 1
        assert cfg.blocks_for(17) == 2
        assert cfg.blocks_for(0) == 0

    def test_block_must_be_warp_multiple(self):
        with pytest.raises(ConfigurationError):
            LaunchConfig(group_size=4, block_threads=100)

    def test_group_cannot_exceed_block(self):
        with pytest.raises(ConfigurationError):
            LaunchConfig(group_size=32, block_threads=0)


class TestLaunch:
    def test_results_in_item_order(self):
        def kernel(i):
            def task():
                yield
                return i * i

            return task()

        assert list(launch(kernel, 5)) == [0, 1, 4, 9, 16]

    def test_launch_counter(self):
        c = TransactionCounter()

        def kernel(i):
            def task():
                return i
                yield  # pragma: no cover

            return task()

        launch(kernel, 3, counter=c)
        assert c.kernel_launches == 1

    def test_custom_scheduler_used(self):
        order = []

        def kernel(i):
            def task():
                order.append(i)
                yield
                order.append(i)
                return i

            return task()

        launch(kernel, 2, scheduler=RoundRobinScheduler())
        assert order == [0, 1, 0, 1]

    def test_negative_items_rejected(self):
        with pytest.raises(ConfigurationError):
            launch(lambda i: iter([]), -1)

    def test_zero_items(self):
        assert list(launch(lambda i: iter([]), 0)) == []
