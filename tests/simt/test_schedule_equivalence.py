"""Volta-style random interleavings must be semantically equivalent to
lock-step execution.

The reference kernels tolerate any progress order the independent-thread
-scheduling model permits; these tests run the same workload under
``RoundRobinScheduler`` (lock-step) and N ``RandomScheduler`` seeds and
require identical *semantics* — exported contents, query answers, erase
masks, size — even where slot placement may differ.  A constructed
contention-free workload must additionally be bit-identical, counters
included.  Every assertion surfaces the scheduler seed so a failure is
replayable directly.
"""

import numpy as np
import pytest

from repro.core.table import WarpDriveHashTable
from repro.simt.scheduler import RandomScheduler, RoundRobinScheduler
from repro.workloads.distributions import random_values, unique_keys

SEEDS = list(range(6))

N = 96
GROUP_SIZE = 4
CAPACITY = 160


def _keys_values():
    return unique_keys(N, seed=13), random_values(N, seed=14)


def _build(scheduler):
    keys, values = _keys_values()
    table = WarpDriveHashTable(CAPACITY, group_size=GROUP_SIZE)
    table.insert(keys, values, executor="ref", scheduler=scheduler)
    return table


def _sorted_export(table):
    keys, values = table.export()
    order = np.argsort(keys, kind="stable")
    return keys[order], values[order]


@pytest.fixture(scope="module")
def lockstep_table():
    return _build(RoundRobinScheduler())


class TestRandomVersusLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_inserted_contents_match(self, seed, lockstep_table):
        table = _build(RandomScheduler(seed=seed))
        ref_k, ref_v = _sorted_export(lockstep_table)
        got_k, got_v = _sorted_export(table)
        assert np.array_equal(got_k, ref_k), f"scheduler seed {seed}: key sets differ"
        assert np.array_equal(got_v, ref_v), f"scheduler seed {seed}: values differ"
        assert len(table) == len(lockstep_table), f"scheduler seed {seed}: size"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_query_answers_match(self, seed, lockstep_table):
        keys, _ = _keys_values()
        absent = unique_keys(2 * N, seed=15)
        absent = absent[~np.isin(absent, keys)][:32]
        probe = np.concatenate([keys, absent])

        table = _build(RandomScheduler(seed=seed))
        ref_vals, ref_found = lockstep_table.query(probe, executor="ref")
        got_vals, got_found = table.query(
            probe, executor="ref", scheduler=RandomScheduler(seed=seed)
        )
        assert np.array_equal(got_found, ref_found), (
            f"scheduler seed {seed}: found masks differ"
        )
        assert np.array_equal(got_vals[got_found], ref_vals[ref_found]), (
            f"scheduler seed {seed}: query values differ"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_erase_masks_match(self, seed):
        keys, _ = _keys_values()
        victims = np.concatenate([keys[::3], np.array([0xDEAD], dtype=np.uint32)])

        ref = _build(RoundRobinScheduler())
        ref_mask = ref.erase(victims, executor="ref", scheduler=RoundRobinScheduler())

        table = _build(RandomScheduler(seed=seed))
        got_mask = table.erase(
            victims, executor="ref", scheduler=RandomScheduler(seed=seed)
        )
        assert np.array_equal(got_mask, ref_mask), (
            f"scheduler seed {seed}: erase masks differ"
        )
        assert len(table) == len(ref), f"scheduler seed {seed}: post-erase size"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_unique_key_insert_invariants(self, seed):
        """Each unique key claims exactly one slot: CAS successes == n."""
        keys, values = _keys_values()
        table = WarpDriveHashTable(CAPACITY, group_size=GROUP_SIZE)
        table.insert(keys, values, executor="ref", scheduler=RandomScheduler(seed=seed))
        assert table.counter.cas_successes == N, (
            f"scheduler seed {seed}: {table.counter.cas_successes} CAS "
            f"successes for {N} unique inserts"
        )
        assert table.counter.cas_attempts >= table.counter.cas_successes
        assert len(table) == N


class TestContentionFreeWorkload:
    """With disjoint first-probe windows, every schedule must produce the
    same bits: each task claims a slot nobody else ever examines."""

    @staticmethod
    def _disjoint_window_keys(table, count):
        taken: set[int] = set()
        picked = []
        for candidate in range(1, 100_000):
            key = np.asarray([candidate], dtype=np.uint32)
            start = int(table.seq.window_start(key, 0, 0, table.capacity)[0])
            window = {(start + r) % table.capacity for r in range(GROUP_SIZE)}
            if window & taken:
                continue
            taken |= window
            picked.append(candidate)
            if len(picked) == count:
                return np.asarray(picked, dtype=np.uint32)
        raise AssertionError("could not build a contention-free key set")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_slots_and_counters_are_bit_identical(self, seed):
        probe = WarpDriveHashTable(CAPACITY, group_size=GROUP_SIZE)
        keys = self._disjoint_window_keys(probe, 24)
        values = random_values(keys.shape[0], seed=16)

        ref = WarpDriveHashTable(CAPACITY, group_size=GROUP_SIZE)
        ref.insert(keys, values, executor="ref", scheduler=RoundRobinScheduler())

        table = WarpDriveHashTable(CAPACITY, group_size=GROUP_SIZE)
        table.insert(keys, values, executor="ref", scheduler=RandomScheduler(seed=seed))

        assert np.array_equal(np.asarray(table.slots), np.asarray(ref.slots)), (
            f"scheduler seed {seed}: slot arrays differ on a "
            "contention-free workload"
        )
        assert table.counter.snapshot() == ref.counter.snapshot(), (
            f"scheduler seed {seed}: counters differ on a "
            "contention-free workload"
        )
