"""Tests for cross-group interleaving schedulers."""

import pytest

from repro.errors import ConfigurationError
from repro.simt.scheduler import (
    ALL_SCHEDULERS,
    RandomScheduler,
    RoundRobinScheduler,
    SequentialScheduler,
)


def make_task(tag, steps, log):
    def gen():
        for i in range(steps):
            log.append((tag, i))
            yield
        return f"done-{tag}"

    return gen()


class TestSequential:
    def test_runs_to_completion_in_order(self):
        log = []
        results = SequentialScheduler().run(
            [make_task("a", 2, log), make_task("b", 2, log)]
        )
        assert results == ["done-a", "done-b"]
        assert log == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]

    def test_empty_task_list(self):
        assert SequentialScheduler().run([]) == []

    def test_zero_step_task(self):
        log = []
        assert SequentialScheduler().run([make_task("x", 0, log)]) == ["done-x"]


class TestRoundRobin:
    def test_interleaves_steps(self):
        log = []
        results = RoundRobinScheduler().run(
            [make_task("a", 2, log), make_task("b", 2, log)]
        )
        assert results == ["done-a", "done-b"]
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_uneven_task_lengths(self):
        log = []
        results = RoundRobinScheduler().run(
            [make_task("a", 1, log), make_task("b", 3, log)]
        )
        assert results == ["done-a", "done-b"]
        assert log[-1] == ("b", 2)


class TestRandom:
    def test_deterministic_per_seed(self):
        log1, log2 = [], []
        RandomScheduler(seed=5).run([make_task("a", 3, log1), make_task("b", 3, log1)])
        RandomScheduler(seed=5).run([make_task("a", 3, log2), make_task("b", 3, log2)])
        assert log1 == log2

    def test_different_seeds_usually_differ(self):
        log1, log2 = [], []
        RandomScheduler(seed=1).run([make_task("a", 8, log1), make_task("b", 8, log1)])
        RandomScheduler(seed=2).run([make_task("a", 8, log2), make_task("b", 8, log2)])
        assert log1 != log2

    def test_results_in_input_order(self):
        results = RandomScheduler(seed=3).run(
            [make_task(i, 2, []) for i in range(5)]
        )
        assert results == [f"done-{i}" for i in range(5)]


class TestSafetyValve:
    def test_infinite_task_detected(self, monkeypatch):
        def forever():
            while True:
                yield

        from repro.simt.scheduler import Scheduler

        monkeypatch.setattr(Scheduler, "MAX_STEPS_PER_TASK", 100)
        with pytest.raises(ConfigurationError):
            SequentialScheduler().run([forever()])


class TestRegistry:
    def test_all_schedulers_constructible(self):
        for name, factory in ALL_SCHEDULERS.items():
            sched = factory()
            assert sched.run([make_task(name, 1, [])]) == [f"done-{name}"]
