"""Tests for the simulated GPU device."""

import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.perfmodel.specs import P100
from repro.simt.device import Device, GPUSpec


class TestGPUSpec:
    def test_p100_constants(self):
        assert P100.vram_gib == pytest.approx(16.0)
        assert P100.mem_bandwidth == pytest.approx(720e9)
        assert P100.num_mem_interfaces == 8

    def test_effective_random_bandwidth(self):
        assert P100.effective_random_bandwidth == pytest.approx(
            720e9 * P100.random_access_efficiency
        )

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(name="x", vram_bytes=0, mem_bandwidth=1.0)
        with pytest.raises(ConfigurationError):
            GPUSpec(name="x", vram_bytes=1, mem_bandwidth=0.0)
        with pytest.raises(ConfigurationError):
            GPUSpec(name="x", vram_bytes=1, mem_bandwidth=1.0,
                    random_access_efficiency=1.5)


class TestDevice:
    def test_allocation_bookkeeping(self, p100_device):
        p100_device.allocate(1000)
        p100_device.allocate(2000)
        assert p100_device.allocated_bytes == 3000
        p100_device.free(1000)
        assert p100_device.allocated_bytes == 2000
        assert p100_device.peak_allocated_bytes == 3000

    def test_vram_exhaustion(self, p100_device):
        with pytest.raises(AllocationError):
            p100_device.allocate(P100.vram_bytes + 1)

    def test_vram_exact_fit(self, p100_device):
        p100_device.allocate(P100.vram_bytes)
        assert p100_device.free_bytes == 0
        with pytest.raises(AllocationError):
            p100_device.allocate(1)

    def test_overfree_rejected(self, p100_device):
        p100_device.allocate(100)
        with pytest.raises(ConfigurationError):
            p100_device.free(200)

    def test_negative_device_id(self):
        with pytest.raises(ConfigurationError):
            Device(-1, P100)

    def test_counter_reset(self, p100_device):
        p100_device.counter.charge_load(5)
        p100_device.reset_counters()
        assert p100_device.counter.load_sectors == 0
