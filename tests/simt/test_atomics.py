"""Tests for atomic operations."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simt.atomics import atomic_add, atomic_cas, atomic_exch, warp_aggregated_add
from repro.simt.counters import TransactionCounter


@pytest.fixture
def buf():
    return np.array([10, 20, 30], dtype=np.uint64)


class TestAtomicCas:
    def test_success_writes_and_returns_old(self, buf):
        old = atomic_cas(buf, 1, np.uint64(20), np.uint64(99))
        assert old == 20
        assert buf[1] == 99

    def test_failure_leaves_slot_and_returns_current(self, buf):
        old = atomic_cas(buf, 1, np.uint64(7), np.uint64(99))
        assert old == 20
        assert buf[1] == 20

    def test_caller_detects_success_by_comparing_old(self, buf):
        """Fig. 3 line 13: success iff returned old == expected."""
        expected = buf[0]
        old = atomic_cas(buf, 0, expected, np.uint64(1))
        assert old == expected  # won
        old2 = atomic_cas(buf, 0, expected, np.uint64(2))
        assert old2 != expected  # lost: someone already changed it

    def test_counter_tracks_attempts_and_successes(self, buf):
        c = TransactionCounter()
        atomic_cas(buf, 0, buf[0], np.uint64(1), c)
        atomic_cas(buf, 0, np.uint64(12345), np.uint64(2), c)
        assert c.cas_attempts == 2
        assert c.cas_successes == 1

    def test_out_of_range_index(self, buf):
        with pytest.raises(ConfigurationError):
            atomic_cas(buf, 3, np.uint64(0), np.uint64(1))


class TestAtomicExch:
    def test_unconditional_swap(self, buf):
        old = atomic_exch(buf, 2, np.uint64(77))
        assert old == 30 and buf[2] == 77

    def test_counted_as_successful_cas(self, buf):
        c = TransactionCounter()
        atomic_exch(buf, 0, np.uint64(1), c)
        assert c.cas_attempts == 1 and c.cas_successes == 1


class TestAtomicAdd:
    def test_returns_preadd(self):
        arr = np.array([5], dtype=np.int64)
        assert atomic_add(arr, 0, 3) == 5
        assert arr[0] == 8

    def test_counter(self):
        arr = np.array([0], dtype=np.int64)
        c = TransactionCounter()
        atomic_add(arr, 0, 1, c)
        assert c.atomic_adds == 1


class TestWarpAggregatedAdd:
    def test_reserves_consecutive_positions(self):
        arr = np.array([100], dtype=np.int64)
        lanes = np.array([True, False, True, True])
        out = warp_aggregated_add(arr, 0, lanes)
        assert out.tolist() == [100, -1, 101, 102]
        assert arr[0] == 103

    def test_single_atomic_for_whole_group(self):
        """Adinetz's point [23]: one atomic serves all participants."""
        arr = np.array([0], dtype=np.int64)
        c = TransactionCounter()
        warp_aggregated_add(arr, 0, np.ones(32, dtype=bool), c)
        assert c.atomic_adds == 1

    def test_no_participants(self):
        arr = np.array([5], dtype=np.int64)
        out = warp_aggregated_add(arr, 0, np.zeros(4, dtype=bool))
        assert (out == -1).all()
        assert arr[0] == 5

    def test_positions_disjoint_across_groups(self):
        arr = np.array([0], dtype=np.int64)
        a = warp_aggregated_add(arr, 0, np.ones(4, dtype=bool))
        b = warp_aggregated_add(arr, 0, np.ones(4, dtype=bool))
        combined = np.concatenate([a, b])
        assert np.unique(combined).size == 8
