"""Shared benchmark utilities.

Every bench target prints its paper-style result block (visible with
``pytest benchmarks/ --benchmark-only -s``) and also records it under
``benchmarks/results/`` so EXPERIMENTS.md can cite fresh numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print a result block and persist it to benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
