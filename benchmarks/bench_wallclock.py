"""Measured engine comparison — real seconds, not modelled ones.

Runs single-shard bulk insert/query, the m = 4 device-sided insert
cascade, and the quarter-capacity growth ingest under all three
execution backends (serial / thread / process) at n = 2^18, |g| = 4,
α = 0.95, and writes ``BENCH_wallclock.json`` at the repo root (row
schema: bench, n, m, engine, ops_per_s, seconds, plus the host
``cpus`` the run had, the ``kernels`` backend that actually ran, and
the pipeline ``depth`` where applicable).

The ``pipeline_insert`` rows sweep the streaming pipeline's in-flight
depth (1 / 2 / 4) at n = 2^20 under modelled device pacing: their
seconds are the driver's *measured* makespan, so the committed JSON
records a real (not modelled) overlap win at ``depth >= 2``.

When a JIT provider is live (``docs/compiled_backend.md``) the suite
also appends ``kernels="compiled"`` serial rows; the serial fast and
compiled legs are both re-timed best-of-``SERIAL_REPEATS`` so the
fast-vs-compiled ratio comes from symmetric same-box measurements.
The same best-of treatment produces a ``layout="compact"`` serial
single-shard insert/query pair next to the aos rows, so the committed
JSON carries the compact-vs-aos comparison (``docs/compact_layout.md``).

Interpretation: the parallel backends can only beat serial when the
host grants more than one core — the ``cpus`` field says whether a
given JSON is from a box where the ≥2x kernel-phase overlap is
reachable (``docs/execution.md``).
"""

from pathlib import Path

from conftest import record

from repro.bench import (
    bench_pipeline_depth,
    bench_single_shard,
    format_records,
    run_wallclock_suite,
    write_results,
)
from repro.core.kernels_jit import compiled_available

REPO_ROOT = Path(__file__).resolve().parent.parent

#: best-of count for the serial fast/compiled legs (same spirit as the
#: ``repeats=5`` the distribution suite uses; symmetric across backends)
SERIAL_REPEATS = 3


def run_suite():
    """Full fast suite + best-of serial fast/compiled rows merged in,
    plus the best-of ``pipeline_insert`` depth sweep (measured overlap)
    and a best-of serial ``layout="compact"`` single-shard insert/query
    pair next to the aos rows."""
    records = run_wallclock_suite(n=1 << 18, m=4, seed=11)
    serial_kernels = ("fast", "compiled") if compiled_available() else ("fast",)
    best = {}

    def _keep(r):
        key = (r.bench, r.engine, r.kernels, r.depth, r.layout)
        prev = best.get(key)
        if prev is None or r.seconds < prev.seconds:
            best[key] = r

    for _ in range(SERIAL_REPEATS):
        for kernels in serial_kernels:
            for r in run_wallclock_suite(
                n=1 << 18, m=4, seed=11, engines=("serial",), kernels=kernels
            ):
                _keep(r)
            # the compact-vs-aos pair: identical serial single-shard
            # legs on the quotiented slot layout
            for r in bench_single_shard(
                "serial", 1 << 18, seed=11, kernels=kernels, layout="compact"
            ):
                _keep(r)
        for r in bench_pipeline_depth(n=1 << 20, m=4, seed=11):
            _keep(r)
    merged = []
    for r in records:
        key = (r.bench, r.engine, r.kernels, r.depth, r.layout)
        if key in best and best[key].seconds < r.seconds:
            r = best[key]
        merged.append(r)
    merged.extend(r for k, r in sorted(best.items()) if k[2] == "compiled")
    merged.extend(
        r for k, r in sorted(best.items()) if k[0] == "pipeline_insert"
    )
    merged.extend(r for k, r in sorted(best.items())
                  if k[4] == "compact" and k[2] != "compiled")
    return merged


def _speedup(records, bench):
    serial = {
        (r.bench, r.kernels): r.seconds
        for r in records
        if r.engine == "serial" and r.layout == "aos"
    }
    fast, compiled = serial.get((bench, "fast")), serial.get((bench, "compiled"))
    return fast / compiled if fast and compiled else 0.0


def test_wallclock(benchmark):
    records = benchmark.pedantic(run_suite, iterations=1, rounds=1)
    write_results(records, REPO_ROOT / "BENCH_wallclock.json")
    record("wallclock", format_records(records))

    benches = {(r.bench, r.engine) for r in records}
    for bench in (
        "single_shard_insert",
        "single_shard_query",
        "cascade_insert",
        "growth_insert",
    ):
        for engine in ("serial", "thread", "process"):
            assert (bench, engine) in benches
    assert all(r.seconds > 0 and r.ops_per_s > 0 for r in records)
    if compiled_available():
        compiled = {r.bench for r in records if r.kernels == "compiled"}
        for bench in (
            "single_shard_insert",
            "single_shard_query",
            "cascade_insert",
            "growth_insert",
        ):
            assert bench in compiled
        # conservative floors (the committed JSON shows the real ratios;
        # these only guard against the compiled path silently regressing
        # to interpreter speed on a noisy box)
        assert _speedup(records, "single_shard_insert") >= 3.0
        assert _speedup(records, "cascade_insert") >= 2.0

    # the streaming-pipeline depth sweep: every depth present, and the
    # depth>=2 measured makespan beats depth=1 (real overlap, best-of-3)
    pipeline = {
        r.depth: r.seconds for r in records if r.bench == "pipeline_insert"
    }
    assert {1, 2, 4} <= set(pipeline)
    assert pipeline[2] < pipeline[1]

    # the compact-vs-aos pair: both layouts present for the serial
    # single-shard legs so the committed JSON carries the comparison
    compact = {r.bench for r in records if r.layout == "compact"}
    assert {"single_shard_insert", "single_shard_query"} <= compact


if __name__ == "__main__":
    rows = run_suite()
    out = write_results(rows, REPO_ROOT / "BENCH_wallclock.json")
    print(format_records(rows))
    for bench in ("single_shard_insert", "cascade_insert"):
        if _speedup(rows, bench):
            print(f"{bench} compiled speedup: {_speedup(rows, bench):.2f}x")
    pipeline = {r.depth: r.seconds for r in rows if r.bench == "pipeline_insert"}
    if 1 in pipeline and 2 in pipeline:
        print(
            f"pipeline_insert measured overlap: "
            f"{(1 - pipeline[2] / pipeline[1]) * 100:.1f}% makespan "
            f"reduction at depth 2"
        )
    print(f"wrote {out}")
