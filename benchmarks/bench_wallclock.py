"""Measured engine comparison — real seconds, not modelled ones.

Runs single-shard bulk insert/query, the m = 4 device-sided insert
cascade, and the quarter-capacity growth ingest under all three
execution backends (serial / thread / process) at n = 2^18, |g| = 4,
α = 0.95, and writes ``BENCH_wallclock.json`` at the repo root (row
schema: bench, n, m, engine, ops_per_s, seconds, plus the host
``cpus`` the run had).

Interpretation: the parallel backends can only beat serial when the
host grants more than one core — the ``cpus`` field says whether a
given JSON is from a box where the ≥2x kernel-phase overlap is
reachable (``docs/execution.md``).
"""

from pathlib import Path

from conftest import record

from repro.bench import format_records, run_wallclock_suite, write_results

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_wallclock(benchmark):
    records = benchmark.pedantic(
        lambda: run_wallclock_suite(n=1 << 18, m=4, seed=11),
        iterations=1,
        rounds=1,
    )
    write_results(records, REPO_ROOT / "BENCH_wallclock.json")
    record("wallclock", format_records(records))

    benches = {(r.bench, r.engine) for r in records}
    for bench in (
        "single_shard_insert",
        "single_shard_query",
        "cascade_insert",
        "growth_insert",
    ):
        for engine in ("serial", "thread", "process"):
            assert (bench, engine) in benches
    assert all(r.seconds > 0 and r.ops_per_s > 0 for r in records)


if __name__ == "__main__":
    rows = run_wallclock_suite(n=1 << 18, m=4, seed=11)
    out = write_results(rows, REPO_ROOT / "BENCH_wallclock.json")
    print(format_records(rows))
    print(f"wrote {out}")
