"""A1 — the §VI dynamic group-size heuristic.

"A possible direction for future research could be design of a heuristic
which dynamically scales the group size |g| with the current load
factor."  We implement that heuristic analytically and check it against
measured optima across the load axis.
"""

from conftest import record

from repro.bench import run_groupsize_ablation


def test_groupsize_heuristic(benchmark):
    result = benchmark.pedantic(
        lambda: run_groupsize_ablation(
            n=1 << 15, loads=(0.5, 0.7, 0.8, 0.9, 0.95, 0.99), seed=19
        ),
        iterations=1,
        rounds=1,
    )
    record("ablation_groupsize", result.format())

    # the heuristic lands on (or adjacent to) the measured optimum
    assert result.agreement() >= 0.8
    # and never leaves the paper's optimal band
    assert all(g in (2, 4, 8) for g in result.heuristic_best)
