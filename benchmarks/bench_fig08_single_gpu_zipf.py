"""Fig. 8 — single-GPU rates under a Zipf key distribution.

Same protocol as Fig. 7 but keys drawn with power-law multiplicities
(s = 1 + 10^-6); duplicate keys resolve by updating the stored value
(§V-B), and the stated load is the true post-insert occupancy.  CUDPP is
absent: "CUDPP does not support key collisions unless a multi-value hash
table is used."

Expected shape: same ordering as Fig. 7 with "even smaller group sizes
favorable" — the effective occupancy the probes see is lower because
many operations are updates that hit early windows.
"""

import math

from conftest import record

from repro.bench import run_single_gpu_sweep

LOADS = (0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99)


def test_fig08_zipf_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_single_gpu_sweep(
            n=1 << 16, loads=LOADS, distribution="zipf", seed=42
        ),
        iterations=1,
        rounds=1,
    )
    record("fig08_single_gpu_zipf", result.format())

    # CUDPP column must be all-NaN (no duplicate-key support)
    assert all(math.isnan(v) for v in result.insert_rates["CUDPP"])
    # small groups win
    for i in range(len(LOADS)):
        assert result.best_group(i, op="insert") in (
            "WD|g|=1", "WD|g|=2", "WD|g|=4", "WD|g|=8",
        )
    # rates stay positive and ordering holds at the highest load
    i_hi = LOADS.index(0.99)
    assert result.insert_rates["WD|g|=4"][i_hi] > result.insert_rates["WD|g|=32"][i_hi]
