"""Measured distribution-path comparison — real seconds, not modelled.

Runs the host-side distribution phases (multisplit, transposition,
reverse transposition) under both the reference implementation and the
fused single-pass one at n = 2^18, m = 4, and writes
``BENCH_distribution.json`` at the repo root (row schema: bench, n, m,
path, seconds, ops_per_s, plus the host ``cpus`` the run had and the
``kernels`` backend counting_scatter resolved — "compiled" when a JIT
provider serviced the fused multisplit, "fast" otherwise).

The fused path must deliver at least a 2x end-to-end speedup on these
phases while staying bit-identical to the reference — the equivalence
itself is property-tested in ``tests/multigpu`` and re-checked inside
the suite before any number is reported.
"""

import json
from pathlib import Path

from conftest import record

from repro.bench import (
    distribution_speedup,
    format_distribution_records,
    run_distribution_suite,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "BENCH_distribution.json"


def merge_distribution_rows(records, path: Path) -> Path:
    """Replace the file's distribution rows, keeping the cluster rows
    ``bench_cluster.py`` merges into the same file."""
    rows = []
    if path.exists():
        rows = [
            row
            for row in json.loads(path.read_text())
            if str(row.get("bench", "")).startswith("cluster")
        ]
    rows = [r.to_dict() for r in records] + rows
    path.write_text(json.dumps(rows, indent=2) + "\n")
    return path


def test_distribution(benchmark):
    records = benchmark.pedantic(
        lambda: run_distribution_suite(n=1 << 18, m=4, seed=11),
        iterations=1,
        rounds=1,
    )
    merge_distribution_rows(records, RESULTS)
    record("distribution", format_distribution_records(records))

    rows = {(r.bench, r.path) for r in records}
    for phase in ("multisplit", "transpose", "reverse", "total"):
        for path in ("reference", "fused"):
            assert (phase, path) in rows
    assert all(r.seconds > 0 and r.cpus >= 1 for r in records)
    assert distribution_speedup(records, "total") >= 2.0


if __name__ == "__main__":
    rows = run_distribution_suite(n=1 << 18, m=4, seed=11)
    out = merge_distribution_rows(rows, RESULTS)
    print(format_distribution_records(rows))
    print(f"total speedup: {distribution_speedup(rows, 'total'):.2f}x")
    print(f"wrote {out}")
