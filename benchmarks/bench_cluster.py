"""Modelled cluster scale-out sweep — 1/2/4 nodes at fixed total keys.

Runs the hierarchical cascade through ``cluster:Nx4`` topologies at a
fixed keyspace (strong scaling, the paper's Fig. 9 discipline) plus a
NIC-bandwidth sensitivity sweep on the largest shape, and merges the
rows into ``BENCH_distribution.json`` at the repo root next to the
fused-vs-reference distribution rows.  Merge discipline: cluster rows
(``bench`` starting with ``cluster``) are replaced wholesale; every
other row in the file is preserved, so this runner and
``bench_distribution.py`` can refresh their halves independently.
"""

import json
from pathlib import Path

from conftest import record

from repro.bench import (
    cluster_scaling_efficiency,
    format_cluster_records,
    run_cluster_suite,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS = REPO_ROOT / "BENCH_distribution.json"

N = 1 << 17
NODE_COUNTS = (1, 2, 4)


def merge_cluster_rows(records, path: Path) -> Path:
    """Replace the file's cluster rows, keeping all other suites' rows."""
    rows = []
    if path.exists():
        rows = [
            row
            for row in json.loads(path.read_text())
            if not str(row.get("bench", "")).startswith("cluster")
        ]
    rows.extend(r.to_dict() for r in records)
    path.write_text(json.dumps(rows, indent=2) + "\n")
    return path


def test_cluster_scaling(benchmark):
    records = benchmark.pedantic(
        lambda: run_cluster_suite(n=N, node_counts=NODE_COUNTS, seed=11),
        iterations=1,
        rounds=1,
    )
    merge_cluster_rows(records, RESULTS)
    record("cluster", format_cluster_records(records))

    shapes = {(r.bench, r.num_nodes) for r in records}
    for nodes in NODE_COUNTS:
        assert ("cluster_insert", nodes) in shapes
        assert ("cluster_query", nodes) in shapes
    # the sensitivity sweep re-runs the largest shape off-default
    assert ("cluster_nic_insert", max(NODE_COUNTS)) in shapes
    assert all(r.seconds > 0 and r.n == N for r in records)
    # single-node shapes never touch the NIC; multi-node ones must
    for r in records:
        if r.num_nodes == 1:
            assert r.alltoall_inter_bytes == 0
        else:
            assert r.alltoall_inter_bytes > 0
    # a slower NIC can only slow the cascade down
    nic = sorted(
        (r for r in records if r.bench == "cluster_nic_insert"),
        key=lambda r: r.nic_bandwidth,
    )
    assert all(a.seconds >= b.seconds for a, b in zip(nic, nic[1:]))
    assert 0.0 < cluster_scaling_efficiency(records) <= 1.0


if __name__ == "__main__":
    rows = run_cluster_suite(n=N, node_counts=NODE_COUNTS, seed=11)
    out = merge_cluster_rows(rows, RESULTS)
    print(format_cluster_records(rows))
    print(f"scaling efficiency: {cluster_scaling_efficiency(rows):.2f}")
    print(f"wrote {out}")
