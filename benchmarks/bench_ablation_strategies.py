"""A3 — the four §IV-B distribution strategies.

The paper's argument for distributed multisplit transposition, measured:
host-sided partitioning pays CPU reordering, system-wide atomics pay
remote CAS, unstructured distribution pays m× query fan-out.
"""

from conftest import record

from repro.bench import run_strategy_ablation
from repro.utils.tables import format_table


def test_distribution_strategies(benchmark):
    results = benchmark.pedantic(
        lambda: run_strategy_ablation(n=1 << 15, seed=41),
        iterations=1,
        rounds=1,
    )
    rows = [
        [name, f"{c.insert_seconds * 1e3:.3f}", f"{c.query_seconds * 1e3:.3f}",
         f"{c.total * 1e3:.3f}", c.note]
        for name, c in sorted(results.items(), key=lambda kv: kv[1].total)
    ]
    record(
        "ablation_strategies",
        format_table(
            ["strategy", "insert ms", "query ms", "total ms", "basis"],
            rows,
            title="A3 — §IV-B distribution strategies (4 GPUs, 2^15 pairs)",
        ),
    )

    totals = {k: v.total for k, v in results.items()}
    assert totals["multisplit_transposition"] == min(totals.values())
    assert results["system_wide_atomics"].insert_seconds == max(
        v.insert_seconds for v in results.values()
    )
    assert (
        results["unstructured"].query_seconds
        > results["multisplit_transposition"].query_seconds
    )
