"""A8 — multi-value tables on skewed keys (the CUDPP gap, quantified).

§V-B: "CUDPP does not support key collisions unless a multi-value hash
table is used" — the paper sidesteps multi-value storage entirely.  This
bench runs the §II multi-value extension on Zipf streams of increasing
skew and surfaces the structural cost the paper never had to face: a key
with multiplicity M occupies M slots along *its own* probe walk, so
inserting all copies costs O(M²/|g|) window probes.  Update-in-place
tables stay flat; multi-value open addressing collapses as the hottest
key grows — which is why counting workloads should aggregate into values
(the update table) rather than store duplicates.
"""

import numpy as np
from conftest import record

from repro.core.multivalue import MultiValueHashTable
from repro.core.table import WarpDriveHashTable
from repro.perfmodel.memmodel import projected_seconds, throughput
from repro.perfmodel.specs import P100
from repro.utils.tables import format_table
from repro.workloads.distributions import random_values, zipf_keys

N = 1 << 14
PAPER_N = 1 << 27
SCALE = PAPER_N / N


def test_multivalue_vs_update(benchmark):
    def run():
        rows = []
        for s in (1.000001, 1.2, 1.5, 2.0):
            keys = zipf_keys(N, s=s, universe=N, seed=61)
            values = random_values(N, seed=62)
            uniq, counts_true = np.unique(keys, return_counts=True)
            hottest = int(counts_true.max())

            mv = MultiValueHashTable.for_load_factor(N, 0.8, group_size=4)
            mv_rep = mv.insert(keys, values)
            mv_rate = throughput(
                PAPER_N, projected_seconds(mv_rep, P100, scale=SCALE)
            )
            assert int(mv.count(uniq).sum()) == N  # nothing dropped

            sv = WarpDriveHashTable.for_load_factor(uniq.size, 0.8, group_size=4)
            sv_rep = sv.insert(keys, values)
            sv_rate = throughput(
                PAPER_N, projected_seconds(sv_rep, P100, scale=SCALE)
            )
            rows.append(
                (f"{s:.2f}", uniq.size, hottest, len(mv), mv_rate,
                 len(sv), sv_rate, mv_rep.mean_windows)
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    record(
        "extension_multivalue",
        format_table(
            ["zipf s", "unique", "hottest M", "mv pairs", "mv G ops/s",
             "sv pairs", "sv G ops/s", "mv windows/op"],
            [
                [s, u, h, mp, f"{mr / 1e9:.3f}", sp, f"{sr / 1e9:.2f}", f"{w:.1f}"]
                for s, u, h, mp, mr, sp, sr, w in rows
            ],
            title="A8 — multi-value vs update-in-place on Zipf streams "
                  "(α=0.8): the O(M²/|g|) hot-key cost",
        ),
    )

    for s, uniq, hottest, mv_pairs, mv_rate, sv_pairs, sv_rate, windows in rows:
        assert mv_pairs == N          # multi-value keeps every observation
        assert sv_pairs == uniq       # single-value collapses duplicates
        assert sv_rate > 1.0e9        # update tables stay fast at any skew
        assert sv_rate > 10 * mv_rate  # the structural gap on hot keys
    # the mv walk cost grows with the hottest key's multiplicity
    mv_windows = [r[7] for r in rows]
    hot = [r[2] for r in rows]
    assert mv_windows == sorted(mv_windows) or hot != sorted(hot)
