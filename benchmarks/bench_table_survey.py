"""Survey table: every implementation on one workload.

Not a paper figure — a cross-cutting summary the related-work section
(§III) implies: WarpDrive vs CUDPP cuckoo, Robin Hood [8], Stadium
hashing [9] (in-core and out-of-core), the sort-and-compress store, and
the Folklore CPU baseline [10], all building and querying the same 2^15
unique pairs at α = 0.9.
"""

import numpy as np
from conftest import record

from repro.baselines import (
    CudppCuckooTable,
    FolkloreCpuMap,
    RobinHoodTable,
    SortCompressStore,
    StadiumHashTable,
)
from repro.core.table import WarpDriveHashTable
from repro.perfmodel.cpu import cpu_kernel_seconds
from repro.perfmodel.memmodel import projected_seconds, throughput
from repro.perfmodel.specs import P100
from repro.utils.tables import format_table
from repro.workloads.distributions import random_values, unique_keys

N = 1 << 15
LOAD = 0.9
PAPER_N = 1 << 27
SCALE = PAPER_N / N


def _gpu_rate(report, table_bytes):
    secs = projected_seconds(report, P100, table_bytes=table_bytes, scale=SCALE)
    return throughput(PAPER_N, secs)


def test_survey(benchmark):
    def run():
        keys = unique_keys(N, seed=1)
        values = random_values(N, seed=2)
        paper_bytes = int(PAPER_N / LOAD) * 8
        rows = []

        wd = WarpDriveHashTable.for_load_factor(N, LOAD, group_size=4)
        ins = wd.insert(keys, values)
        wd.query(keys)
        rows.append(
            ("WarpDrive |g|=4", _gpu_rate(ins, paper_bytes),
             _gpu_rate(wd.last_report, paper_bytes))
        )

        ck = CudppCuckooTable.for_load_factor(N, LOAD, seed=3)
        ins = ck.insert(keys, values)
        ck.query(keys)
        rows.append(
            ("CUDPP cuckoo [2]", _gpu_rate(ins, paper_bytes),
             _gpu_rate(ck.last_report, paper_bytes))
        )

        rh = RobinHoodTable.for_load_factor(N, LOAD, seed=4)
        ins = rh.insert(keys, values)
        rh.query(keys)
        rows.append(
            ("Robin Hood [8]", _gpu_rate(ins, paper_bytes),
             _gpu_rate(rh.last_report, paper_bytes))
        )

        st_in = StadiumHashTable.for_load_factor(N, LOAD, in_core=True, seed=5)
        ins = st_in.insert(keys, values)
        st_in.query(keys)
        rows.append(
            ("Stadium in-core [9]", _gpu_rate(ins, paper_bytes),
             _gpu_rate(st_in.last_report, paper_bytes))
        )

        st_out = StadiumHashTable.for_load_factor(N, LOAD, in_core=False, seed=6)
        ins = st_out.insert(keys, values)
        st_out.query(keys)
        rows.append(
            ("Stadium out-of-core [9]", _gpu_rate(ins, paper_bytes),
             _gpu_rate(st_out.last_report, paper_bytes))
        )

        sc = SortCompressStore(keys, values)
        sc.query(keys)
        rows.append(
            ("sort&compress (§II)", _gpu_rate(sc.build_report, paper_bytes),
             _gpu_rate(sc.last_report, paper_bytes))
        )

        cpu = FolkloreCpuMap.for_load_factor(N, LOAD, seed=7)
        ins = cpu.insert(keys, values)
        cpu.query(keys)
        cpu_ins = throughput(N, cpu_kernel_seconds(ins))
        cpu_qry = throughput(N, cpu_kernel_seconds(cpu.last_report))
        rows.append(("Folklore CPU [10]", cpu_ins, cpu_qry))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    record(
        "table_survey",
        format_table(
            ["implementation", "insert G ops/s", "query G ops/s"],
            [[name, f"{i / 1e9:.2f}", f"{q / 1e9:.2f}"] for name, i, q in rows],
            title=f"Survey — all implementations, unique keys, α={LOAD}",
        ),
    )

    rates = {name: (i, q) for name, i, q in rows}
    wd_i, wd_q = rates["WarpDrive |g|=4"]
    # WarpDrive wins insertion against every GPU open-addressing rival
    for rival in ("CUDPP cuckoo [2]", "Robin Hood [8]", "Stadium in-core [9]"):
        assert wd_i > rates[rival][0], rival
    # out-of-core Stadium collapses towards the §III ~0.1 G figure
    assert rates["Stadium out-of-core [9]"][0] < 0.4e9
    # the CPU baseline is an order of magnitude down (Folklore ~0.3 G)
    assert rates["Folklore CPU [10]"][0] < 0.6e9
    # sort&compress queries pay the log-n binary search
    assert rates["sort&compress (§II)"][1] < wd_q