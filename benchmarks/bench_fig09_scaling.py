"""Fig. 9 — strong and weak scaling over 1-4 GPUs.

Device-sided insert/retrieve cascades at α = 0.95, |g| = 4, for paper
sizes n ∈ {2^28, 2^29} (simulated at 2^14 per point, projected).

Expected shape: efficiencies drop from m = 1 to m = 2 (the added
multisplit + communication) then stay flat; 'Insert 2^29' scales better
than 'Insert 2^28' because the m = 1 baseline suffers the >2 GB CAS
degradation (the paper's super-linear point).
"""

from conftest import record

from repro.bench import run_scaling


def test_fig09_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: run_scaling(n_sim=1 << 14, paper_exponents=(28, 29), seed=17),
        iterations=1,
        rounds=1,
    )
    record("fig09_scaling", result.format())

    for label, effs in result.weak.items():
        assert effs[0] == 1.0
        tail = effs[1:]
        assert max(tail) - min(tail) < 0.25 * max(tail), label
    assert result.strong["Insert 2^29"][-1] > result.strong["Insert 2^28"][-1]
