"""Fig. 7 — single-GPU insertion/retrieval rates, unique keys.

Paper protocol (§V-B): insert 2^27 unique (4+4)-byte pairs, retrieve them
all, for loads 0.40-0.99 and |g| ∈ {1..32}, against CUDPP cuckoo (which
caps at load 0.97).  We simulate 2^16 pairs per point and project rates
to paper scale through the perf model.

Expected shape: |g| ∈ {2,4,8} optimal, |g|=1 collapsing beyond α≈0.9,
WarpDrive ≈ 2.8× CUDPP insertion at α = 0.95, ~1.3× retrieval.
"""

from conftest import record

from repro.bench import run_single_gpu_sweep

LOADS = (0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.97, 0.99)


def test_fig07_unique_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_single_gpu_sweep(
            n=1 << 16, loads=LOADS, distribution="unique", seed=42
        ),
        iterations=1,
        rounds=1,
    )
    record("fig07_single_gpu_unique", result.format())

    # hard shape assertions (the reproduction's acceptance criteria)
    for i in range(len(LOADS)):
        assert result.best_group(i, op="insert") in ("WD|g|=2", "WD|g|=4", "WD|g|=8")
    i95 = LOADS.index(0.95)
    assert result.speedup_over_cudpp(0.95, op="insert") > 2.0
    best95 = max(result.insert_rates[f"WD|g|={g}"][i95] for g in (2, 4, 8))
    assert 1.1e9 < best95 < 1.8e9  # the 1.4 G inserts/s headline
