"""A2 — classic probing schemes (Eqs. 1-3): clustering vs cache cost.

§II: linear probing is cache-efficient but clusters; quadratic and
chaotic (double-hash) probing avoid primary clustering at the cost of
more random transactions.  WarpDrive's hybrid windows take linear's
coalescing *inside* a window and double hashing *between* windows.
"""

from conftest import record

from repro.bench import run_probing_ablation


def test_probing_schemes(benchmark):
    result = benchmark.pedantic(
        lambda: run_probing_ablation(n=1 << 13, loads=(0.5, 0.7, 0.9, 0.95), seed=29),
        iterations=1,
        rounds=1,
    )
    record("ablation_probing", result.format())

    hi = len(result.loads) - 1
    lin_mean, lin_p99, _ = result.stats["linear"][hi]
    dbl_mean, dbl_p99, _ = result.stats["double"][hi]
    # primary clustering: linear's tail blows up at high load
    assert lin_p99 > 2 * dbl_p99
    assert lin_mean > dbl_mean
    # quadratic sits between
    quad_p99 = result.stats["quadratic"][hi][1]
    assert dbl_p99 <= quad_p99 <= lin_p99 * 1.1
