"""Micro-benchmarks of the simulator itself (wall-clock, pytest-benchmark).

Not a paper figure: these track the *reproduction's* own performance so
regressions in the vectorized executors show up.  They are the targets
pytest-benchmark actually times across rounds.
"""

import numpy as np
import pytest

from repro.core.table import WarpDriveHashTable
from repro.baselines import CudppCuckooTable
from repro.multigpu import DistributedHashTable, p100_nvlink_node
from repro.workloads import random_values, unique_keys

N = 1 << 15
KEYS = unique_keys(N, seed=1)
VALUES = random_values(N, seed=2)


@pytest.mark.parametrize("g", [1, 4, 32])
def test_bulk_insert_speed(benchmark, g):
    def run():
        table = WarpDriveHashTable.for_load_factor(N, 0.9, group_size=g)
        table.insert(KEYS, VALUES)
        return table

    table = benchmark(run)
    assert len(table) == N


def test_bulk_query_speed(benchmark):
    table = WarpDriveHashTable.for_load_factor(N, 0.9, group_size=4)
    table.insert(KEYS, VALUES)

    def run():
        values, found = table.query(KEYS)
        return found

    found = benchmark(run)
    assert bool(found.all())


def test_cuckoo_insert_speed(benchmark):
    def run():
        table = CudppCuckooTable.for_load_factor(N, 0.9, seed=3)
        table.insert(KEYS, VALUES)
        return table

    table = benchmark(run)
    assert len(table) == N


def test_distributed_cascade_speed(benchmark):
    def run():
        node = p100_nvlink_node(4)
        table = DistributedHashTable.for_load_factor(node, N, 0.9)
        table.insert(KEYS, VALUES, source="host")
        return table

    table = benchmark(run)
    assert len(table) == N
