"""The reproduction scorecard at benchmark scale.

Runs every experiment once at full bench size and grades all checkable
paper claims — the single-command answer to "does this reproduction
hold?".
"""

from conftest import record

from repro.bench.scorecard import evaluate_claims, format_scorecard


def test_scorecard(benchmark):
    results = benchmark.pedantic(
        lambda: evaluate_claims(quick=False, seed=42), iterations=1, rounds=1
    )
    record("scorecard", format_scorecard(results))
    misses = [r.claim.id for r in results if not r.ok]
    assert not misses, f"claims out of tolerance: {misses}"
