"""A6 — adaptive group sizing across a table's fill lifetime.

The §VI heuristic applied end-to-end: stream batches into one table from
empty to α = 0.99; the adaptive table retunes |g| before each batch and
its cumulative modelled insert time must track the best *single* fixed
|g| (and clearly beat the worst), without knowing the final load ahead
of time.
"""

import numpy as np
from conftest import record

from repro.constants import VALID_GROUP_SIZES
from repro.core.adaptive import AdaptiveWarpDriveTable
from repro.core.table import WarpDriveHashTable
from repro.perfmodel.memmodel import projected_seconds
from repro.perfmodel.specs import P100
from repro.utils.tables import format_table
from repro.workloads.distributions import random_values, unique_keys

N = 1 << 15
BATCHES = 8
PAPER_SCALE = (1 << 27) / N


def _stream_cost(table) -> float:
    keys = unique_keys(N, seed=7)
    values = random_values(N, seed=8)
    total = 0.0
    for b in range(BATCHES):
        sl = slice(b * N // BATCHES, (b + 1) * N // BATCHES)
        rep = table.insert(keys[sl], values[sl])
        total += projected_seconds(
            rep, P100, table_bytes=table.table_bytes, scale=PAPER_SCALE
        )
    return total


def test_adaptive_tracks_best_fixed(benchmark):
    def run():
        capacity = int(N / 0.99) + 1
        fixed = {
            g: _stream_cost(WarpDriveHashTable(capacity, group_size=g))
            for g in VALID_GROUP_SIZES
        }
        adaptive_table = AdaptiveWarpDriveTable(capacity, group_size=32)
        adaptive = _stream_cost(adaptive_table)
        return fixed, adaptive, adaptive_table.tuning_history

    fixed, adaptive, history = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [[f"fixed |g|={g}", f"{s * 1e3:.2f}"] for g, s in fixed.items()]
    rows.append(["adaptive (§VI heuristic)", f"{adaptive * 1e3:.2f}"])
    record(
        "extension_adaptive",
        format_table(
            ["configuration", "modelled insert ms (0 -> 0.99 fill)"],
            rows,
            title=f"A6 — adaptive |g| over a fill lifetime; retunes: {history}",
        ),
    )

    best = min(fixed.values())
    worst = max(fixed.values())
    assert adaptive <= best * 1.10  # within 10% of the oracle fixed choice
    assert adaptive < worst * 0.75  # and far from the worst
