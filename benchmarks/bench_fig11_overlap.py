"""Fig. 11 — runtime decomposition of overlapped cascades.

32 GB of pairs streamed through host-sided insertion and retrieval
cascades in 2^24-pair batches (simulated at 2^13 per batch, 16 batches),
scheduled with 1, 2, and 4 CPU threads.

Expected shape: overlapping reduces wall time by ≈36% for insertion and
≈45% for retrieval (the retrieval cascade's H2D and D2H legs ride
opposite PCIe directions, so they overlap too).
"""

from conftest import record

from repro.bench import run_overlap


def test_fig11_overlap(benchmark):
    result = benchmark.pedantic(
        lambda: run_overlap(num_batches=16, batch_sim=1 << 13, seed=31),
        iterations=1,
        rounds=1,
    )
    record("fig11_overlap", result.format())

    red = dict(zip(result.labels, result.reductions))
    assert 0.25 < red["Ins4"] < 0.50   # paper: 36%
    assert 0.35 < red["Ret4"] < 0.55   # paper: 45%
    spans = dict(zip(result.labels, result.makespans))
    assert spans["Ins4"] <= spans["Ins2"] <= spans["Ins1"]
    assert spans["Ret4"] <= spans["Ret2"] <= spans["Ret1"]
