"""Fig. 10 — multi-GPU rates vs capacity, three key distributions.

Insert/retrieve 2^28-2^32 pairs (simulated at 2^15 per point) on 4 GPUs
at α = 0.95, |g| = 4, with and without the PCIe legs.

Expected shape: device retrieval flat across capacities; device
insertion drops up to ~2× past n = 2^30 (the multi-memory-interface CAS
artifact); host-sided rates PCIe-bound with insert ≥ retrieve (the
retrieval cascade pays a second PCIe transfer).
"""

from conftest import record

from repro.bench import run_capacity_sweep


def test_fig10_capacity(benchmark):
    result = benchmark.pedantic(
        lambda: run_capacity_sweep(
            paper_exponents=(28, 29, 30, 31, 32),
            distributions=("unique", "uniform", "zipf"),
            n_sim=1 << 15,
            seed=23,
        ),
        iterations=1,
        rounds=1,
    )
    record("fig10_capacity", result.format())

    for dist in ("unique", "uniform"):
        ins = result.device_insert[dist]
        ret = result.device_retrieve[dist]
        assert ins[-1] < 0.85 * ins[0], dist  # the >2^30 insertion drop
        assert max(ret) / min(ret) < 1.4, dist  # retrieval stays flat
        host_ins = result.host_insert[dist]
        host_ret = result.host_retrieve[dist]
        assert host_ins[0] > 0.9 * host_ret[0]
