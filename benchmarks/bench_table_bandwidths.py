"""In-text bandwidth claims (§V-C / conclusion).

"multisplit performs at ≈210 GB/s accumulated bandwidth on global memory
and all-to-all transposition corresponds to ≈192 GB/s bandwidth of the
NVLINK interconnection network"; "the peak insertion/retrieval rates
from/to the host correspond to 84%/55% of the theoretically achievable
PCIe bandwidth".
"""

from conftest import record

from repro.bench import run_bandwidths


def test_bandwidth_anchors(benchmark):
    result = benchmark.pedantic(
        lambda: run_bandwidths(n_sim=1 << 14, num_batches=16, seed=37),
        iterations=1,
        rounds=1,
    )
    record("table_bandwidths", result.format())

    assert abs(result.multisplit_accumulated - 210e9) / 210e9 < 0.12
    assert abs(result.alltoall_accumulated - 192e9) / 192e9 < 0.12
    assert 0.55 < result.host_insert_pcie_fraction < 0.95
