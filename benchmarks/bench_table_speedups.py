"""In-text speedup claims (§V-B).

"WarpDrive shows speedups over CUDPP of 1.79, 2.18, 2.84 for insertion
and 1.3, 1.34, 1.3 for retrieval at load factors of 0.8, 0.9, 0.95."
"""

from conftest import record

from repro.bench import run_speedup_table


def test_speedup_table(benchmark):
    result = benchmark.pedantic(
        lambda: run_speedup_table(n=1 << 16, loads=(0.80, 0.90, 0.95), seed=42),
        iterations=1,
        rounds=1,
    )
    record("table_speedups_vs_cudpp", result.format())

    # insertion speedups monotone increasing and near the paper's values
    assert result.insert_speedups == sorted(result.insert_speedups)
    for ours, paper in zip(result.insert_speedups, result.paper_insert):
        assert abs(ours - paper) / paper < 0.35
    for ours in result.retrieve_speedups:
        assert 1.0 <= ours <= 1.7
