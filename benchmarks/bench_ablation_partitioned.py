"""A5 — the §VI high-capacity workaround: partitioned tables.

"A possible workaround to further increase performance could be the
partitioning of high capacity hash maps into several smaller hash maps
each of size ≤ 2 GB."  We price the same insert workload against a
monolithic 8 GB table (CAS degraded) and against its partitioned
equivalent (each sub-table under the knee).
"""

import numpy as np
from conftest import record

from repro.core.table import WarpDriveHashTable
from repro.perfmodel import calibration as cal
from repro.perfmodel.memmodel import cas_degradation, projected_seconds, throughput
from repro.perfmodel.specs import P100
from repro.utils.tables import format_table
from repro.workloads.distributions import random_values, unique_keys

PAPER_N = 1 << 30  # pairs filling an 8 GB table at alpha = 0.95
SIM_N = 1 << 15


def test_partitioned_recovers_insert_rate(benchmark):
    def run():
        keys = unique_keys(SIM_N, seed=1)
        values = random_values(SIM_N, seed=2)
        table = WarpDriveHashTable.for_load_factor(SIM_N, 0.95, group_size=4)
        rep = table.insert(keys, values)
        scale = PAPER_N / SIM_N
        mono_bytes = int(PAPER_N / 0.95) * 8
        # the class arithmetic: enough sub-tables to sit under the knee
        import math

        parts = math.ceil(mono_bytes / cal.CAS_DEGRADE_KNEE_BYTES)
        sub_bytes = math.ceil(mono_bytes / parts)

        mono_s = projected_seconds(rep, P100, table_bytes=mono_bytes, scale=scale)
        part_s = projected_seconds(rep, P100, table_bytes=sub_bytes, scale=scale)
        return (
            throughput(PAPER_N, mono_s),
            throughput(PAPER_N, part_s),
            mono_bytes,
            sub_bytes,
        )

    mono_rate, part_rate, mono_bytes, sub_bytes = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    rows = [
        ["monolithic", f"{mono_bytes / (1 << 30):.1f}",
         f"{cas_degradation(mono_bytes):.2f}", f"{mono_rate / 1e9:.2f}"],
        [f"partitioned", f"{sub_bytes / (1 << 30):.1f}",
         f"{cas_degradation(sub_bytes):.2f}", f"{part_rate / 1e9:.2f}"],
    ]
    record(
        "ablation_partitioned",
        format_table(
            ["layout", "CAS footprint GiB", "CAS factor", "insert G ops/s"],
            rows,
            title="A5 — §VI workaround: partitioning an 8 GB map (α=0.95, |g|=4)",
        ),
    )

    # the workaround must recover a substantial share of the lost rate
    assert cas_degradation(mono_bytes) < 0.7
    assert cas_degradation(sub_bytes) == 1.0
    assert part_rate > 1.2 * mono_rate
