"""A4 — AoS vs SoA memory layout (Fig. 1).

"AOS ensures cache-friendly and fully atomic access onto key-value pairs
up to 64 bits.  In contrast, the separated key and value arrays in the
SOA format allow for longer keys at the cost of inferior caching."
"""

from conftest import record

from repro.bench import run_layout_ablation


def test_layout_transactions(benchmark):
    result = benchmark.pedantic(run_layout_ablation, iterations=1, rounds=1)
    record("ablation_layout", result.format())

    # SoA costs 2x for every sub-sector window (|g| <= 4)
    for g, aos, soa in zip(
        result.group_sizes, result.aos_sectors_per_window, result.soa_sectors_per_window
    ):
        if g <= 4:
            assert soa == 2 * aos
        else:
            assert soa <= aos  # wide windows amortize the split arrays
