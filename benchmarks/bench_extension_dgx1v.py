"""A7 — beyond the paper: WarpDrive's design on an 8-GPU DGX-1V.

The paper's conclusion asks how the distribution scheme scales past its
4×P100 testbed.  We run the identical cascades on a modelled DGX-1V —
eight V100s on the hybrid cube-mesh, which is *not* fully connected, so
the all-to-all transposition pays two-hop relays for diagonal pairs.

Expected shape: efficiency drops again from m = 4 to m = 8 (relayed
all-to-all traffic), but the aggregate insert rate keeps growing —
sharding remains worthwhile on the bigger node.
"""

import numpy as np
from conftest import record

from repro.core.table import WarpDriveHashTable
from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import dgx1v_node
from repro.perfmodel.cascade import time_cascade
from repro.perfmodel.memmodel import projected_seconds, throughput
from repro.perfmodel.specs import V100
from repro.utils.tables import format_table
from repro.workloads.distributions import make_distribution, random_values

N_SIM = 1 << 14
PAPER_N = 1 << 29
LOAD = 0.95


def _cascade_seconds(m: int, keys, values) -> float:
    scale = PAPER_N / N_SIM
    if m == 1:
        table = WarpDriveHashTable.for_load_factor(N_SIM, LOAD, group_size=4)
        rep = table.insert(keys, values)
        return projected_seconds(rep, V100, scale=scale)
    node = dgx1v_node()
    # use the first m GPUs of the mesh by restricting the partition
    from repro.multigpu.topology import NodeTopology
    import networkx as nx

    sub = NodeTopology(
        devices=node.devices[:m],
        nvlink=nx.MultiGraph(node.nvlink.subgraph(range(m))),
        pcie_switch_of={g: node.pcie_switch_of[g] for g in range(m)},
        pcie_switch_bandwidth=node.pcie_switch_bandwidth,
    )
    table = DistributedHashTable.for_workload(sub, keys, LOAD, group_size=4)
    rep = table.insert(keys, values, source="device")
    timing = time_cascade(rep, table, sub, scale=scale)
    table.free()
    return timing.device_only


def test_dgx1v_scaling(benchmark):
    def run():
        keys = make_distribution("unique", N_SIM, seed=51)
        values = random_values(N_SIM, seed=52)
        out = []
        tau1 = None
        for m in (1, 2, 4, 8):
            secs = _cascade_seconds(m, keys, values)
            if tau1 is None:
                tau1 = secs
            out.append(
                (m, secs, tau1 / (m * secs), throughput(PAPER_N, secs))
            )
        return out

    series = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [
        [m, f"{s * 1e3:.2f}", f"{eff:.3f}", f"{rate / 1e9:.2f}"]
        for m, s, eff, rate in series
    ]
    record(
        "extension_dgx1v",
        format_table(
            ["GPUs", "insert ms (2^29 pairs)", "E_s", "G ops/s"],
            rows,
            title="A7 — beyond the paper: device-sided insert on a DGX-1V "
                  "(8x V100, hybrid cube-mesh)",
        ),
    )

    rates = [rate for _, _, _, rate in series]
    effs = [eff for _, _, eff, _ in series]
    # aggregate throughput keeps growing to 8 GPUs...
    assert rates[-1] > rates[-2] > rates[0]
    # ...but the relayed all-to-all costs efficiency at m = 8
    assert effs[-1] < effs[1]
