"""A9 — interconnect ablation: the paper's NVLink premise, quantified.

Contribution 2 rests on "exploiting fast GPU interconnection networks
within a single node".  This ablation runs the identical distributed
insert cascade on the paper's NVLink mesh and on an otherwise-equal node
whose peer-to-peer traffic rides PCIe (~10 GB/s shared lanes), isolating
what the interconnect itself buys the transposition step.
"""

import numpy as np
from conftest import record

from repro.multigpu.distributed_table import DistributedHashTable
from repro.multigpu.topology import p100_nvlink_node, pcie_only_node
from repro.perfmodel.cascade import time_cascade
from repro.perfmodel.memmodel import throughput
from repro.utils.tables import format_table
from repro.workloads.distributions import make_distribution, random_values

N_SIM = 1 << 14
PAPER_N = 1 << 29
LOAD = 0.95


def _run(node_factory):
    node = node_factory(4)
    keys = make_distribution("unique", N_SIM, seed=71)
    values = random_values(N_SIM, seed=72)
    table = DistributedHashTable.for_workload(node, keys, LOAD, group_size=4)
    rep = table.insert(keys, values, source="device")
    timing = time_cascade(rep, table, node, scale=PAPER_N / N_SIM)
    table.free()
    return timing


def test_nvlink_vs_pcie_interconnect(benchmark):
    def run():
        return _run(p100_nvlink_node), _run(pcie_only_node)

    nvlink, pcie = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = []
    for name, t in (("NVLink mesh (Fig. 6)", nvlink), ("PCIe-only peer links", pcie)):
        rows.append(
            [
                name,
                f"{t.alltoall * 1e3:.1f}",
                f"{t.device_only * 1e3:.1f}",
                f"{throughput(PAPER_N, t.device_only) / 1e9:.2f}",
            ]
        )
    record(
        "ablation_topology",
        format_table(
            ["interconnect", "all-to-all ms", "cascade ms", "insert G ops/s"],
            rows,
            title="A9 — interconnect ablation, device-sided insert of 2^29 "
                  "pairs on 4 GPUs",
        ),
    )

    # the transposition step itself is several times faster over NVLink
    assert pcie.alltoall > 1.5 * nvlink.alltoall
    # and the end-to-end cascade meaningfully benefits
    assert pcie.device_only > 1.05 * nvlink.device_only