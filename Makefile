PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src

.PHONY: test cov fuzz-smoke racecheck fuzz-full trace-smoke grow-smoke stream-smoke serve-smoke cluster-smoke compact-smoke bench-compiled

# tier-1: fast suite, excludes `slow` and `fuzz` via pyproject addopts
test:
	$(PYTHON) -m pytest

# line-coverage floor for repro.simt + repro.core (stdlib tracer;
# `pip install -e .[cov]` enables the faster pytest-cov path instead)
cov:
	$(PYTHON) tools/coverage_floor.py --list

# 60-second differential fuzz pass plus the fuzz-marked test battery
fuzz-smoke:
	$(PYTHON) -m repro fuzz --budget 60s --corpus tests/fuzz/corpus.json
	$(PYTHON) -m pytest tests/fuzz -m fuzz

# observability smoke: trace a small insert+query cascade, validate the
# emitted Perfetto trace_event JSON (repro trace exits 1 on problems)
trace-smoke:
	$(PYTHON) -m repro trace --smoke --out /tmp/repro.smoke.trace.json

# lifecycle smoke: 4x-capacity ingest through every table flavour with
# dynamic growth, traced + Perfetto-validated (repro grow exits 1 on
# any InsertionError, lost pair, or missing grow/rehash span)
grow-smoke:
	$(PYTHON) -m repro grow --smoke --out /tmp/repro.grow.trace.json

# pipeline smoke: depth>=2 streaming vs depth=1 bit-identity, staging
# backpressure (pipeline.stall spans), measured overlap win under
# modelled pacing, Perfetto-validated (repro stream exits 1 on any miss)
stream-smoke:
	$(PYTHON) -m repro stream --smoke --out /tmp/repro.stream.trace.json

# cluster smoke: one-node-cluster bit-identity against the flat node
# (outputs AND charged bytes), NIC charging on a 2x2 cluster, and the
# traced transpose.intra/inter levels, Perfetto-validated (repro
# cluster exits 1 on any miss)
cluster-smoke:
	$(PYTHON) -m repro cluster --smoke --out /tmp/repro.cluster.trace.json

# compact-layout smoke: cross-layout bit-identity under growth +
# tombstone churn, strictly narrower modelled VRAM/exchange charges on
# quotienting tables, snapshot round-trip, and perf-model monotonicity
# (repro compact exits 1 on any miss)
compact-smoke:
	$(PYTHON) -m repro compact --smoke

# serving smoke: boot a live KVServer, drive insert/query/erase through
# a real client, check cache-coherence across an overwrite and the
# hit/miss counters (repro serve exits 1 on any gate miss)
serve-smoke:
	$(PYTHON) -m repro serve --smoke

# compiled-backend smoke: the serial wallclock suite through
# kernels="compiled" at tiny n (auto-falls back to "fast" when no JIT
# provider exists — the printed rows record the backend that ran)
bench-compiled:
	$(PYTHON) -m repro bench --smoke --suite wallclock --engines serial --kernels compiled

# racecheck certification: clean tree silent, every mutant flagged
racecheck:
	$(PYTHON) -m repro racecheck

# longer fuzz campaign for local soak testing
fuzz-full:
	$(PYTHON) -m repro fuzz --budget 10m --corpus tests/fuzz/corpus.json
